open Datalog
module Metrics = Util.Metrics

let m_runs = Metrics.counter "analysis.absint.runs"
let m_time = Metrics.timer "analysis.absint.time"
let m_iterations = Metrics.counter "analysis.absint.iterations"
let m_grounded = Metrics.counter "analysis.absint.grounded_args"
let m_slices = Metrics.counter "slice.runs"
let m_kept = Metrics.counter "slice.rules_kept"
let m_dropped = Metrics.counter "slice.rules_dropped"
let m_certified = Metrics.counter "slice.certified"

(* ------------------------------------------------------------------ *)
(* The per-argument constant lattice                                    *)
(* ------------------------------------------------------------------ *)

type value = Bot | Consts of Symbol.t list | Top

let max_consts = 4

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | Consts xs, Consts ys ->
    let u = List.sort_uniq Symbol.compare (xs @ ys) in
    if List.length u > max_consts then Top else Consts u

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Top, x | x, Top -> x
  | Consts xs, Consts ys -> (
    match List.filter (fun x -> List.exists (Symbol.equal x) ys) xs with
    | [] -> Bot
    | zs -> Consts zs)

let pp_value ppf = function
  | Bot -> Format.pp_print_string ppf "bot"
  | Top -> Format.pp_print_string ppf "top"
  | Consts cs ->
    Format.fprintf ppf "{%s}" (String.concat "," (List.map Symbol.name cs))

type t = {
  program : Program.t;
  classification : Classify.t;
  consts : (Symbol.t, value array) Hashtbl.t;
  derivable : (Symbol.t, unit) Hashtbl.t;
  card : Stats.t;
  const_iterations : int;
}

(* ------------------------------------------------------------------ *)
(* Binding/constant analysis                                            *)
(* ------------------------------------------------------------------ *)

(* Abstract evaluation of one rule body under the current per-argument
   values: the abstract binding of each variable is the meet of the
   values at all its body positions, and a constant argument must be
   compatible with its position's value. [None] means the body is
   unsatisfiable in every model the analysis over-approximates — the
   rule can never fire. *)
let rule_env consts r =
  let env : (Symbol.t, value) Hashtbl.t = Hashtbl.create 8 in
  let ok = ref true in
  List.iter
    (fun (a : Atom.t) ->
      match Hashtbl.find_opt consts a.Atom.pred with
      | None -> ok := false
      | Some vals ->
        Array.iteri
          (fun col t ->
            let pv = vals.(col) in
            match t with
            | Term.Const c -> if meet (Consts [ c ]) pv = Bot then ok := false
            | Term.Var v ->
              let cur =
                match Hashtbl.find_opt env v with Some x -> x | None -> Top
              in
              let m = meet cur pv in
              if m = Bot then ok := false;
              Hashtbl.replace env v m)
          a.Atom.args)
    (Rule.body r);
  if !ok then Some env else None

let analyze_consts program db =
  let consts : (Symbol.t, value array) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let arity = Program.arity program p in
      (* Seed from the database for ANY predicate with stored facts:
         intensional predicates may carry facts too (the engine treats
         them as rank-0 model members), and missing them here would
         wrongly refute rules over them. *)
      let init =
        if Database.count_pred db p > 0 then begin
          let seen = Array.init arity (fun _ -> Hashtbl.create 8) in
          Database.iter_pred db p (fun f ->
              let args = Fact.args f in
              Array.iteri (fun i tbl -> Hashtbl.replace tbl args.(i) ()) seen);
          Array.map
            (fun tbl ->
              if Hashtbl.length tbl > max_consts then Top
              else
                Consts
                  (List.sort Symbol.compare
                     (Hashtbl.fold (fun c () acc -> c :: acc) tbl [])))
            seen
        end
        else Array.make arity Bot
      in
      Hashtbl.replace consts p init)
    (Program.schema program);
  let iterations = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    incr iterations;
    List.iter
      (fun r ->
        match rule_env consts r with
        | None -> ()
        | Some env ->
          let head = Rule.head r in
          let hvals = Hashtbl.find consts head.Atom.pred in
          Array.iteri
            (fun col t ->
              let v =
                match t with
                | Term.Const c -> Consts [ c ]
                | Term.Var var -> (
                  match Hashtbl.find_opt env var with
                  | Some x -> x
                  | None -> Top (* unreachable: rules are safe *))
              in
              let j = join hvals.(col) v in
              if j <> hvals.(col) then begin
                hvals.(col) <- j;
                changed := true
              end)
            head.Atom.args)
      (Program.rules program)
  done;
  (consts, !iterations)

(* Predicates that may hold at least one fact in the least model:
   predicates with stored facts, plus the closure under "some rule with
   an all-derivable body". Over-approximates non-emptiness, so a
   predicate {e not} in the set is provably empty. *)
let analyze_derivable program db =
  let derivable : (Symbol.t, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun p ->
      (* Any stored fact — extensional or intensional — makes the
         predicate non-empty in the least model. *)
      if Database.count_pred db p > 0 then Hashtbl.replace derivable p ())
    (Program.schema program);
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r ->
        let h = (Rule.head r).Atom.pred in
        if
          (not (Hashtbl.mem derivable h))
          && List.for_all
               (fun (a : Atom.t) -> Hashtbl.mem derivable a.Atom.pred)
               (Rule.body r)
        then begin
          Hashtbl.replace derivable h ();
          changed := true
        end)
      (Program.rules program)
  done;
  derivable

(* ------------------------------------------------------------------ *)
(* Cardinality/selectivity estimation                                   *)
(* ------------------------------------------------------------------ *)

let widen_after = 4
let rows_cap = 1e15

(* System-R style sequential join estimate of one rule body: [bindings]
   satisfying assignments after each atom, each equi-join dividing by
   the larger distinct count of the two sides, each constant column by
   its own. Returns the estimated firings and the per-head-column
   distinct estimates. *)
let estimate_rule card r =
  let bindings = ref 1.0 in
  let var_distinct : (Symbol.t, float) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (a : Atom.t) ->
      let rows, distinct =
        match Stats.find card a.Atom.pred with
        | Some { Stats.rows; distinct } -> (rows, distinct)
        | None -> (0.0, [||])
      in
      let sel = ref 1.0 in
      Array.iteri
        (fun col t ->
          let d =
            if col < Array.length distinct then Float.max 1.0 distinct.(col)
            else 1.0
          in
          match t with
          | Term.Const _ -> sel := !sel /. d
          | Term.Var v -> (
            match Hashtbl.find_opt var_distinct v with
            | Some dv ->
              sel := !sel /. Float.max dv d;
              Hashtbl.replace var_distinct v (Float.min dv d)
            | None -> Hashtbl.replace var_distinct v d))
        a.Atom.args;
      bindings := Float.min rows_cap (!bindings *. rows *. !sel))
    (Rule.body r);
  let head = Rule.head r in
  let head_distinct =
    Array.map
      (fun t ->
        match t with
        | Term.Const _ -> 1.0
        | Term.Var v -> (
          match Hashtbl.find_opt var_distinct v with
          | Some dv -> Float.min dv !bindings
          | None -> !bindings))
      head.Atom.args
  in
  (!bindings, head_distinct)

let analyze_cardinality program db (classification : Classify.t) =
  let dom = Float.max 1.0 (float_of_int (List.length (Database.domain db))) in
  let card = Stats.create () in
  (* Seed: exact statistics of the stored facts — for every predicate,
     intensional ones included (their facts enter the model at rank 0);
     absent stores are genuinely empty. *)
  let db_stats = Stats.of_database db in
  let base p =
    match Stats.find db_stats p with
    | Some s -> s
    | None ->
      { Stats.rows = 0.0;
        distinct = Array.make (Program.arity program p) 0.0 }
  in
  List.iter (fun p -> Stats.set card p (base p)) (Program.schema program);
  let update_pred p =
    let arity = Program.arity program p in
    (* Stored facts are part of the relation on top of whatever the
       rules derive. *)
    let b = base p in
    let rows_sum = ref b.Stats.rows in
    let col_max =
      Array.init arity (fun i -> Float.min b.Stats.distinct.(i) dom)
    in
    List.iter
      (fun r ->
        let est, head_distinct = estimate_rule card r in
        rows_sum := Float.min rows_cap (!rows_sum +. est);
        Array.iteri
          (fun i d -> col_max.(i) <- Float.max col_max.(i) (Float.min d dom))
          head_distinct)
      (Program.rules_for program p);
    let distinct = Array.map (fun d -> Float.min d dom) col_max in
    let prod = Array.fold_left (fun acc d -> Float.min rows_cap (acc *. Float.max 1.0 d)) 1.0 distinct in
    let rows = Float.min (Float.min !rows_sum prod) rows_cap in
    let prev = Stats.find card p in
    Stats.set card p { Stats.rows; distinct };
    match prev with
    | Some { Stats.rows = r0; distinct = d0 } ->
      Float.abs (rows -. r0) > 1e-9 *. Float.max 1.0 r0
      || Array.exists2
           (fun a b -> Float.abs (a -. b) > 1e-9 *. Float.max 1.0 b)
           distinct d0
    | None -> true
  in
  List.iter
    (fun (scc : Classify.scc) ->
      let idb = List.filter (Program.is_idb program) scc.Classify.preds in
      if idb <> [] then
        if not scc.Classify.recursive then List.iter (fun p -> ignore (update_pred p)) idb
        else begin
          (* Recursive SCC: iterate the component's estimates; if they
             have not settled after [widen_after] rounds, widen every
             member straight to the cap — each column bounded by the
             active domain, rows by the column product — which is the
             lattice top, so the fixpoint is reached by construction. *)
          let rec iterate n =
            Metrics.incr m_iterations;
            let changed =
              List.fold_left (fun acc p -> update_pred p || acc) false idb
            in
            if changed && n + 1 < widen_after then iterate (n + 1)
            else if changed then
              List.iter
                (fun p ->
                  let arity = Program.arity program p in
                  let distinct = Array.make arity dom in
                  let prod =
                    Array.fold_left
                      (fun acc d -> Float.min rows_cap (acc *. d))
                      1.0 distinct
                  in
                  Stats.set card p { Stats.rows = prod; distinct })
                idb
          in
          iterate 0
        end)
    classification.Classify.sccs;
  card

(* ------------------------------------------------------------------ *)
(* Analysis driver                                                      *)
(* ------------------------------------------------------------------ *)

let analyze program db =
  Metrics.time m_time @@ fun () ->
  Metrics.incr m_runs;
  let classification = Classify.classify program in
  let consts, const_iterations = analyze_consts program db in
  let derivable = analyze_derivable program db in
  (* The constant analysis can prove emptiness the reachability fixpoint
     cannot: a position whose value stays [Bot] admits no fact at all,
     so any predicate with a [Bot] position is empty in the least model. *)
  List.iter
    (fun p ->
      match Hashtbl.find_opt consts p with
      | Some vals when Array.exists (fun v -> v = Bot) vals ->
        Hashtbl.remove derivable p
      | _ -> ())
    (Program.schema program);
  let card = analyze_cardinality program db classification in
  let t = { program; classification; consts; derivable; card; const_iterations } in
  Metrics.add m_iterations const_iterations;
  Metrics.add m_grounded
    (Hashtbl.fold
       (fun _ vals acc ->
         Array.fold_left
           (fun acc v -> match v with Consts [ _ ] -> acc + 1 | _ -> acc)
           acc vals)
       consts 0);
  t

let constants t p = Hashtbl.find_opt t.consts p

let grounded t =
  let acc = ref [] in
  List.iter
    (fun p ->
      match Hashtbl.find_opt t.consts p with
      | None -> ()
      | Some vals ->
        Array.iteri
          (fun col v ->
            match v with Consts [ c ] -> acc := (p, col, c) :: !acc | _ -> ())
          vals)
    (Program.schema t.program);
  List.rev !acc

let stats t = t.card
let derivable t p = Hashtbl.mem t.derivable p

(* ------------------------------------------------------------------ *)
(* Adorned binding patterns                                             *)
(* ------------------------------------------------------------------ *)

let adornments t ~query =
  let program = t.program in
  let seen : (Symbol.t * string, unit) Hashtbl.t = Hashtbl.create 16 in
  let queue = Queue.create () in
  let push p ad =
    if not (Hashtbl.mem seen (p, ad)) then begin
      Hashtbl.replace seen (p, ad) ();
      Queue.add (p, ad) queue
    end
  in
  (if Program.is_idb program query then
     push query (String.make (Program.arity program query) 'b'));
  while not (Queue.is_empty queue) do
    let p, ad = Queue.pop queue in
    List.iter
      (fun r ->
        let bound : (Symbol.t, unit) Hashtbl.t = Hashtbl.create 8 in
        Array.iteri
          (fun col tm ->
            match tm with
            | Term.Var v when col < String.length ad && ad.[col] = 'b' ->
              Hashtbl.replace bound v ()
            | _ -> ())
          (Rule.head r).Atom.args;
        (* Left-to-right sideways information passing over the textual
           body order: the adornment vocabulary is a property of the
           program, independent of any join-order choice. *)
        List.iter
          (fun (a : Atom.t) ->
            let b = Bytes.make (Atom.arity a) 'f' in
            Array.iteri
              (fun col tm ->
                match tm with
                | Term.Const _ -> Bytes.set b col 'b'
                | Term.Var v ->
                  if Hashtbl.mem bound v then Bytes.set b col 'b')
              a.Atom.args;
            if Program.is_idb program a.Atom.pred then
              push a.Atom.pred (Bytes.to_string b);
            Array.iter
              (fun tm ->
                match tm with
                | Term.Var v -> Hashtbl.replace bound v ()
                | Term.Const _ -> ())
              a.Atom.args)
          (Rule.body r))
      (Program.rules_for program p)
  done;
  Hashtbl.fold (fun (p, ad) () acc -> (p, ad) :: acc) seen []
  |> List.sort (fun (p, a) (q, b) ->
         match Symbol.compare p q with 0 -> String.compare a b | c -> c)

(* ------------------------------------------------------------------ *)
(* Query-relevance slicing                                              *)
(* ------------------------------------------------------------------ *)

type reason = Unreachable | Underivable of Symbol.t | Constant_conflict

let reason_to_string = function
  | Unreachable -> "unreachable from the query"
  | Underivable p ->
    Printf.sprintf "body predicate %s is provably empty" (Symbol.name p)
  | Constant_conflict -> "constant analysis proves the body unsatisfiable"

type slice = {
  s_query : Symbol.t;
  s_original : Program.t;
  s_program : Program.t;
  s_kept : Rule.t list;
  s_dropped : (Rule.t * reason) list;
  s_relevant : Symbol.t list;
  s_edb_dropped : Symbol.t list;
}

let slice t ~query =
  Metrics.incr m_slices;
  let program = t.program in
  let rules = Program.rules program in
  (* A rule is dead when its body provably cannot match in the least
     model: some body predicate is empty (Underivable), or the constant
     analysis refutes the body (Constant_conflict). Dead rules derive
     nothing, so dropping them never changes the model. *)
  let deadness r =
    let underivable =
      List.find_opt
        (fun (a : Atom.t) -> not (Hashtbl.mem t.derivable a.Atom.pred))
        (Rule.body r)
    in
    match underivable with
    | Some a -> Some (Underivable a.Atom.pred)
    | None -> if rule_env t.consts r = None then Some Constant_conflict else None
  in
  let dead = List.map (fun r -> (r, deadness r)) rules in
  let dead_ids : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (r, d) -> if d <> None then Hashtbl.replace dead_ids r.Rule.id ())
    dead;
  (* Cone of influence: predicates backward-reachable from the query
     through live rules only — a dead rule's body cannot contribute. *)
  let relevant : (Symbol.t, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec visit p =
    if not (Hashtbl.mem relevant p) then begin
      Hashtbl.replace relevant p ();
      List.iter
        (fun r ->
          if not (Hashtbl.mem dead_ids r.Rule.id) then
            List.iter (fun (a : Atom.t) -> visit a.Atom.pred) (Rule.body r))
        (Program.rules_for program p)
    end
  in
  visit query;
  let kept = ref [] and dropped = ref [] in
  List.iter
    (fun (r, death) ->
      let head = (Rule.head r).Atom.pred in
      if Symbol.equal head query then
        (* Rules defining the query predicate are always kept, dead or
           not, so the sliced program still defines the query and the
           downstream [Explain.query] contract holds. *)
        kept := r :: !kept
      else
        match death with
        | Some reason -> dropped := (r, reason) :: !dropped
        | None ->
          if Hashtbl.mem relevant head then kept := r :: !kept
          else dropped := (r, Unreachable) :: !dropped)
    dead;
  let kept = List.rev !kept and dropped = List.rev !dropped in
  (* Predicate status must survive slicing: a cone predicate that is
     intensional in the original but loses every defining rule would
     turn extensional in the sliced program — and stored facts of an
     extensional predicate are why-provenance leaves ({!Naive.why_un}),
     so the query's why-sets could grow. Retain one dead rule per such
     predicate; its reason is necessarily Underivable or
     Constant_conflict (an unreachable head is outside the cone), so it
     still never fires and the model is untouched. *)
  let kept, dropped =
    let defined : (Symbol.t, unit) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (r : Rule.t) -> Hashtbl.replace defined (Rule.head r).Atom.pred ())
      kept;
    let kept' = ref (List.rev kept) and dropped' = ref [] in
    List.iter
      (fun (r, reason) ->
        let head = (Rule.head r).Atom.pred in
        if Hashtbl.mem relevant head && not (Hashtbl.mem defined head) then begin
          Hashtbl.replace defined head ();
          kept' := r :: !kept'
        end
        else dropped' := (r, reason) :: !dropped')
      dropped;
    (List.rev !kept', List.rev !dropped')
  in
  Metrics.add m_kept (List.length kept);
  Metrics.add m_dropped (List.length dropped);
  let s_relevant =
    List.sort Symbol.compare
      (Hashtbl.fold (fun p () acc -> p :: acc) relevant [])
  in
  let s_edb_dropped =
    List.filter (fun p -> not (Hashtbl.mem relevant p)) (Program.edb program)
  in
  {
    s_query = query;
    s_original = program;
    s_program = Program.make kept;
    s_kept = kept;
    s_dropped = dropped;
    s_relevant;
    s_edb_dropped;
  }

let relevant_db s db =
  let relevant : (Symbol.t, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace relevant p ()) s.s_relevant;
  let out = Database.create ~size:(Database.size db) () in
  Database.iter
    (fun f -> if Hashtbl.mem relevant (Fact.pred f) then ignore (Database.add out f))
    db;
  out

exception Fires

(* The certificate: every drop reason re-established against the full
   structural model, plus model- and rank-equality over the relevant
   predicates between the original and the sliced evaluation. This is
   the whole soundness claim of the slice, checked by the reference
   engine rather than trusted from the abstract run. *)
let certify s db =
  let full_ranks : int Fact.Table.t = Fact.Table.create 256 in
  let full = Eval.seminaive_structural ~ranks:full_ranks s.s_original db in
  let sliced_ranks : int Fact.Table.t = Fact.Table.create 256 in
  let sliced =
    Eval.seminaive_structural ~ranks:sliced_ranks s.s_program (relevant_db s db)
  in
  let relevant : (Symbol.t, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace relevant p ()) s.s_relevant;
  let restrict model =
    let acc = ref Fact.Set.empty in
    Database.iter
      (fun f -> if Hashtbl.mem relevant (Fact.pred f) then acc := Fact.Set.add f !acc)
      model;
    !acc
  in
  let reasons_ok =
    List.for_all
      (fun (r, reason) ->
        match reason with
        | Unreachable ->
          not (Hashtbl.mem relevant (Rule.head r).Atom.pred)
        | Underivable p -> Database.count_pred full p = 0
        | Constant_conflict -> (
          let b : Eval.binding = Hashtbl.create 8 in
          match Eval.match_body full b (Rule.body r) (fun () -> raise Fires) with
          | () -> true
          | exception Fires -> false))
      s.s_dropped
  in
  let full_restricted = restrict full and sliced_restricted = restrict sliced in
  let models_ok = Fact.Set.equal full_restricted sliced_restricted in
  let ranks_ok =
    Fact.Set.for_all
      (fun f ->
        Fact.Table.find_opt full_ranks f = Fact.Table.find_opt sliced_ranks f)
      full_restricted
  in
  let ok = reasons_ok && models_ok && ranks_ok in
  if ok then Metrics.incr m_certified;
  ok

(* ------------------------------------------------------------------ *)
(* Report                                                               *)
(* ------------------------------------------------------------------ *)

let pp ppf t =
  Format.fprintf ppf "@[<v>constants (bot < const-set<=%d < top):@," max_consts;
  List.iter
    (fun p ->
      match Hashtbl.find_opt t.consts p with
      | None -> ()
      | Some vals ->
        Format.fprintf ppf "  %s%s: (%s)@," (Symbol.name p)
          (if Program.is_edb t.program p then "" else "*")
          (String.concat ", "
             (Array.to_list
                (Array.map (Format.asprintf "%a" pp_value) vals))))
    (Program.schema t.program);
  Format.fprintf ppf "cardinality (rows / per-column distinct, estimates):@,";
  List.iter
    (fun p ->
      match Stats.find t.card p with
      | None -> ()
      | Some { Stats.rows; distinct } ->
        Format.fprintf ppf "  %s%s: rows<=%.6g, distinct<=(%s)@," (Symbol.name p)
          (if Program.is_edb t.program p then "" else "*")
          rows
          (String.concat ", "
             (Array.to_list (Array.map (Printf.sprintf "%.6g") distinct))))
    (Program.schema t.program);
  let empties =
    List.filter (fun p -> not (Hashtbl.mem t.derivable p)) (Program.schema t.program)
  in
  if empties <> [] then
    Format.fprintf ppf "provably empty: %s@,"
      (String.concat ", " (List.map Symbol.name empties));
  Format.fprintf ppf "constant fixpoint: %d iteration(s)@]" t.const_iterations

let pp_slice ppf s =
  Format.fprintf ppf "@[<v>slice for query %s: kept %d rule(s), dropped %d@,"
    (Symbol.name s.s_query)
    (List.length s.s_kept) (List.length s.s_dropped);
  List.iter
    (fun (r, reason) ->
      Format.fprintf ppf "  dropped %a  [%s]@," Rule.pp r
        (reason_to_string reason))
    s.s_dropped;
  Format.fprintf ppf "relevant predicates: %s@,"
    (String.concat ", " (List.map Symbol.name s.s_relevant));
  (match s.s_edb_dropped with
  | [] -> ()
  | ps ->
    Format.fprintf ppf "irrelevant extensional predicates: %s@,"
      (String.concat ", " (List.map Symbol.name ps)));
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* JSON report                                                         *)
(* ------------------------------------------------------------------ *)

module Json = Util.Metrics.Json

let json_schema_version = "whyprov.analyze/1"

let value_json = function
  | Bot -> Json.Str "bot"
  | Top -> Json.Str "top"
  | Consts cs -> Json.List (List.map (fun c -> Json.Str (Symbol.name c)) cs)

let slice_json s =
  Json.Obj
    [
      ("query", Json.Str (Symbol.name s.s_query));
      ("kept", Json.Num (float_of_int (List.length s.s_kept)));
      ( "dropped",
        Json.List
          (List.map
             (fun (r, reason) ->
               Json.Obj
                 [
                   ("rule", Json.Str (Rule.to_string r));
                   ("reason", Json.Str (reason_to_string reason));
                 ])
             s.s_dropped) );
      ( "relevant",
        Json.List (List.map (fun p -> Json.Str (Symbol.name p)) s.s_relevant)
      );
      ( "edb_dropped",
        Json.List (List.map (fun p -> Json.Str (Symbol.name p)) s.s_edb_dropped)
      );
    ]

let to_json ?query t =
  let preds = Program.schema t.program in
  let pred_json p =
    let intensional = not (Program.is_edb t.program p) in
    let consts =
      match Hashtbl.find_opt t.consts p with
      | None -> []
      | Some vals ->
        [ ("constants", Json.List (Array.to_list (Array.map value_json vals))) ]
    in
    let card =
      match Stats.find t.card p with
      | None -> []
      | Some { Stats.rows; distinct } ->
        [
          ("rows", Json.Num rows);
          ( "distinct",
            Json.List
              (Array.to_list (Array.map (fun d -> Json.Num d) distinct)) );
        ]
    in
    Json.Obj
      ([
         ("pred", Json.Str (Symbol.name p));
         ("intensional", Json.Bool intensional);
         ("derivable", Json.Bool (Hashtbl.mem t.derivable p));
       ]
      @ consts @ card)
  in
  Json.Obj
    ([
       ("schema", Json.Str json_schema_version);
       ("preds", Json.List (List.map pred_json preds));
       ( "grounded",
         Json.List
           (List.map
              (fun (p, col, c) ->
                Json.Obj
                  [
                    ("pred", Json.Str (Symbol.name p));
                    ("col", Json.Num (float_of_int col));
                    ("const", Json.Str (Symbol.name c));
                  ])
              (grounded t)) );
       ("constant_iterations", Json.Num (float_of_int t.const_iterations));
     ]
    @
    match query with
    | None -> []
    | Some q ->
      [
        ("query", Json.Str (Symbol.name q));
        ( "adornments",
          Json.List
            (List.map
               (fun (p, ad) ->
                 Json.Obj
                   [
                     ("pred", Json.Str (Symbol.name p));
                     ("adornment", Json.Str ad);
                   ])
               (adornments t ~query:q)) );
        ("slice", slice_json (slice t ~query:q));
      ])
