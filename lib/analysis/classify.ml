open Datalog
module Metrics = Util.Metrics

let m_classify = Metrics.counter "analysis.classifications"
let m_classify_time = Metrics.timer "analysis.classify"

type cls =
  | Nrdat
  | Ldat
  | Pwl_dat
  | Dat

type scc = {
  preds : Symbol.t list;
  recursive : bool;
  stratum : int;
}

type t = {
  cls : cls;
  linear : bool;
  recursive : bool;
  piecewise_linear : bool;
  sccs : scc list;
  strata : int;
  recursive_sccs : int;
}

let cls_name = function
  | Nrdat -> "NRDat"
  | Ldat -> "LDat"
  | Pwl_dat -> "PwlDat"
  | Dat -> "Dat"

let cls_describe = function
  | Nrdat -> "non-recursive"
  | Ldat -> "linear recursive"
  | Pwl_dat -> "piecewise-linear recursive"
  | Dat -> "general recursive"

(* Tarjan's algorithm over the predicate graph. Predicate counts are
   small (tens), so the recursive formulation is fine. SCCs are emitted
   dependents-first; we reverse at the end so the result lists
   dependencies before the components that use them. *)
let strongly_connected_components preds succ =
  let index = Hashtbl.create 32 in
  let lowlink = Hashtbl.create 32 in
  let on_stack = Hashtbl.create 32 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strong p =
    Hashtbl.replace index p !counter;
    Hashtbl.replace lowlink p !counter;
    incr counter;
    stack := p :: !stack;
    Hashtbl.replace on_stack p ();
    List.iter
      (fun q ->
        match Hashtbl.find_opt index q with
        | None ->
          strong q;
          Hashtbl.replace lowlink p
            (min (Hashtbl.find lowlink p) (Hashtbl.find lowlink q))
        | Some qi ->
          if Hashtbl.mem on_stack q then
            Hashtbl.replace lowlink p (min (Hashtbl.find lowlink p) qi))
      (succ p);
    if Hashtbl.find lowlink p = Hashtbl.find index p then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | q :: rest ->
          stack := rest;
          Hashtbl.remove on_stack q;
          if Symbol.compare q p = 0 then q :: acc else pop (q :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun p -> if not (Hashtbl.mem index p) then strong p) preds;
  List.rev !sccs

let classify program =
  Metrics.incr m_classify;
  Metrics.time m_classify_time (fun () ->
      let preds = Program.schema program in
      let edges = Program.predicate_edges program in
      let succ_tbl = Hashtbl.create 32 in
      List.iter
        (fun (src, dst) ->
          let existing =
            Option.value ~default:[] (Hashtbl.find_opt succ_tbl src)
          in
          Hashtbl.replace succ_tbl src (dst :: existing))
        edges;
      let succ p = Option.value ~default:[] (Hashtbl.find_opt succ_tbl p) in
      let components = strongly_connected_components preds succ in
      let scc_of = Hashtbl.create 32 in
      List.iteri
        (fun i comp -> List.iter (fun p -> Hashtbl.replace scc_of p i) comp)
        components;
      let self_loop p = List.exists (fun q -> Symbol.compare p q = 0) (succ p) in
      let comp_recursive comp =
        match comp with
        | [ p ] -> self_loop p
        | _ -> true
      in
      (* Stratum of an SCC: 0 for purely extensional predicates, otherwise
         one more than the deepest SCC it depends on. The condensation is
         acyclic, so memoized recursion terminates. *)
      let components_arr = Array.of_list components in
      let strata_memo = Array.make (Array.length components_arr) (-1) in
      let rec stratum i =
        if strata_memo.(i) >= 0 then strata_memo.(i)
        else begin
          let comp = components_arr.(i) in
          let intensional =
            List.exists (fun p -> Program.is_idb program p) comp
          in
          let result =
            if not intensional then 0
            else
              let deepest = ref 0 in
              List.iter
                (fun p ->
                  List.iter
                    (fun rule ->
                      List.iter
                        (fun (a : Atom.t) ->
                          let j = Hashtbl.find scc_of a.Atom.pred in
                          if j <> i then deepest := max !deepest (stratum j))
                        (Rule.body rule))
                    (Program.rules_for program p))
                comp;
              !deepest + 1
          in
          strata_memo.(i) <- result;
          result
        end
      in
      let sccs =
        List.mapi
          (fun i comp ->
            { preds = comp; recursive = comp_recursive comp; stratum = stratum i })
          components
      in
      (* Dependencies before dependents: an SCC's stratum is strictly
         greater than that of every SCC it depends on, so sorting by
         stratum (stably, keeping Tarjan order within a level) is a
         topological order of the condensation. *)
      let sccs =
        List.stable_sort
          (fun (a : scc) (b : scc) -> Int.compare a.stratum b.stratum)
          sccs
      in
      let recursive = List.exists (fun (s : scc) -> s.recursive) sccs in
      let linear = Program.is_linear program in
      (* Piecewise-linear: every rule uses at most one body atom from its
         head's own SCC; such programs decompose into a tower of linear
         layers. *)
      let piecewise_linear =
        List.for_all
          (fun rule ->
            let head_scc = Hashtbl.find scc_of (Rule.head rule).Atom.pred in
            let in_own_scc =
              List.filter
                (fun (a : Atom.t) -> Hashtbl.find scc_of a.Atom.pred = head_scc)
                (Rule.body rule)
            in
            List.length in_own_scc <= 1)
          (Program.rules program)
      in
      let cls =
        if not recursive then Nrdat
        else if linear then Ldat
        else if piecewise_linear then Pwl_dat
        else Dat
      in
      {
        cls;
        linear;
        recursive;
        piecewise_linear;
        sccs;
        strata = List.fold_left (fun acc (s : scc) -> max acc s.stratum) 0 sccs;
        recursive_sccs =
          List.length (List.filter (fun (s : scc) -> s.recursive) sccs);
      })

let summary c =
  Printf.sprintf "%s (%s; %s; %d strat%s; %d recursive SCC%s)" (cls_name c.cls)
    (cls_describe c.cls)
    (if c.linear then "linear" else "non-linear")
    c.strata
    (if c.strata = 1 then "um" else "a")
    c.recursive_sccs
    (if c.recursive_sccs = 1 then "" else "s")

(* A witness cycle [p1 -> p2 -> ... -> p1] inside a recursive SCC, used
   by the WP201 informational diagnostic. *)
let cycle_witness program scc_preds =
  match scc_preds with
  | [] -> None
  | first :: _ ->
    let in_scc p =
      List.exists (fun q -> Symbol.compare p q = 0) scc_preds
    in
    let succ p =
      List.filter_map
        (fun (src, dst) ->
          if Symbol.compare src p = 0 && in_scc dst then Some dst else None)
        (Program.predicate_edges program)
    in
    if List.exists (fun q -> Symbol.compare q first = 0) (succ first) then
      Some [ first; first ]
    else begin
      (* BFS from the successors of [first] back to [first]. *)
      let parent = Hashtbl.create 8 in
      let queue = Queue.create () in
      List.iter
        (fun q ->
          if not (Hashtbl.mem parent q) then begin
            Hashtbl.replace parent q first;
            Queue.add q queue
          end)
        (succ first);
      let found = ref None in
      while !found = None && not (Queue.is_empty queue) do
        let p = Queue.pop queue in
        List.iter
          (fun q ->
            if Symbol.compare q first = 0 && !found = None then
              found := Some p
            else if not (Hashtbl.mem parent q) then begin
              Hashtbl.replace parent q p;
              Queue.add q queue
            end)
          (succ p)
      done;
      match !found with
      | None -> None
      | Some last ->
        let rec build p acc =
          if Symbol.compare p first = 0 then first :: acc
          else build (Hashtbl.find parent p) (p :: acc)
        in
        Some (build last [ first ])
    end
