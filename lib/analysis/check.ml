open Datalog
module Metrics = Util.Metrics
module Json = Util.Metrics.Json

let m_checks = Metrics.counter "analysis.checks"
let m_check_time = Metrics.timer "analysis.check"
let m_diag_errors = Metrics.counter "analysis.diagnostics.errors"
let m_diag_warnings = Metrics.counter "analysis.diagnostics.warnings"
let m_diag_infos = Metrics.counter "analysis.diagnostics.infos"

type result = {
  diagnostics : Diagnostic.t list;
  errors : int;
  warnings : int;
  infos : int;
  program : Program.t option;
  facts : Fact.t list;
  classification : Classify.t option;
  selection : Selection.t option;
}

let ok r = r.errors = 0
let clean r = r.errors = 0 && r.warnings = 0

type builder = { mutable diags : Diagnostic.t list }

let add b ~code ~severity ?pos message =
  b.diags <- Diagnostic.make ~code ~severity ?pos message :: b.diags

let names syms = String.concat ", " (List.map Symbol.name syms)

(* ------------------------------------------------------------------ *)
(* Stage 1: clause-level checks on the raw parse (before a Program can
   be built). Errors here are exactly the conditions under which
   Parser.clause_of_raw or Program.make would raise. *)

let check_arities b clauses =
  let arities : (Symbol.t, int * Pos.t) Hashtbl.t = Hashtbl.create 32 in
  let check_atom (a : Atom.t) =
    match Hashtbl.find_opt arities a.Atom.pred with
    | Some (n, first_pos) when n <> Atom.arity a ->
      add b ~code:"WP003" ~severity:Diagnostic.Error ~pos:a.Atom.pos
        (Printf.sprintf
           "predicate %s used with arity %d, but with arity %d at %s"
           (Symbol.name a.Atom.pred) (Atom.arity a) n
           (Pos.to_string first_pos))
    | Some _ -> ()
    | None -> Hashtbl.replace arities a.Atom.pred (Atom.arity a, a.Atom.pos)
  in
  List.iter
    (fun (raw : Parser.raw_clause) ->
      check_atom raw.Parser.raw_head;
      List.iter check_atom raw.Parser.raw_body)
    clauses

let check_clause_shape b rule_heads (raw : Parser.raw_clause) =
  if raw.Parser.raw_body = [] then begin
    if not (Atom.is_ground raw.Parser.raw_head) then
      add b ~code:"WP002" ~severity:Diagnostic.Error ~pos:raw.Parser.raw_pos
        (Printf.sprintf
           "fact with variables: a bodyless clause must be ground (variables %s)"
           (names (Atom.vars raw.Parser.raw_head)));
    if Hashtbl.mem rule_heads raw.Parser.raw_head.Atom.pred then
      add b ~code:"WP004" ~severity:Diagnostic.Error ~pos:raw.Parser.raw_pos
        (Printf.sprintf
           "fact asserts the intensional predicate %s (facts must use \
            extensional predicates)"
           (Symbol.name raw.Parser.raw_head.Atom.pred))
  end
  else
    match Rule.unsafe_vars raw.Parser.raw_head raw.Parser.raw_body with
    | [] -> ()
    | vs ->
      add b ~code:"WP001" ~severity:Diagnostic.Error ~pos:raw.Parser.raw_pos
        (Printf.sprintf
           "unsafe rule: head variable%s %s %s not occur in the body"
           (if List.length vs = 1 then "" else "s")
           (names vs)
           (if List.length vs = 1 then "does" else "do"))

(* ------------------------------------------------------------------ *)
(* Stage 2: program-level checks. Only reached when stage 1 reported no
   errors, so rules are safe and arities are consistent. *)

(* Alpha-equivalence key: variables renamed in order of first occurrence
   (head first), constants and predicates by interned id. Body order is
   significant; reordered-but-equivalent rules are caught by the
   subsumption check instead. *)
let canon_rule r =
  let buf = Buffer.create 64 in
  let map : (Symbol.t, int) Hashtbl.t = Hashtbl.create 8 in
  let counter = ref 0 in
  let term = function
    | Term.Const c -> Buffer.add_string buf (Printf.sprintf "c%d;" c)
    | Term.Var v ->
      let i =
        match Hashtbl.find_opt map v with
        | Some i -> i
        | None ->
          let i = !counter in
          incr counter;
          Hashtbl.replace map v i;
          i
      in
      Buffer.add_string buf (Printf.sprintf "V%d;" i)
  in
  let atom (a : Atom.t) =
    Buffer.add_string buf (Printf.sprintf "%d(" a.Atom.pred);
    Array.iter term a.Atom.args;
    Buffer.add_char buf ')'
  in
  atom (Rule.head r);
  List.iter
    (fun a ->
      Buffer.add_string buf ":-";
      atom a)
    (Rule.body r);
  Buffer.contents buf

(* [subsumes ra rb]: is there a substitution θ with θ(head ra) = head rb
   and θ(body ra) ⊆ body rb (as sets)? Then every fact rb derives, ra
   derives too, with a sub-multiset of the body — rb is redundant. *)
let subsumes ra rb =
  let binding : (Symbol.t, Term.t) Hashtbl.t = Hashtbl.create 8 in
  let match_atom (a : Atom.t) (target : Atom.t) undo =
    if
      Symbol.compare a.Atom.pred target.Atom.pred <> 0
      || Atom.arity a <> Atom.arity target
    then false
    else begin
      let ok = ref true in
      let i = ref 0 in
      let n = Atom.arity a in
      while !ok && !i < n do
        (match (a.Atom.args.(!i), target.Atom.args.(!i)) with
        | Term.Const c1, Term.Const c2 ->
          if Symbol.compare c1 c2 <> 0 then ok := false
        | Term.Const _, Term.Var _ -> ok := false
        | Term.Var v, t2 -> (
          match Hashtbl.find_opt binding v with
          | Some t -> if not (Term.equal t t2) then ok := false
          | None ->
            Hashtbl.replace binding v t2;
            undo := v :: !undo));
        incr i
      done;
      !ok
    end
  in
  let unwind undo = List.iter (Hashtbl.remove binding) !undo in
  let undo_head = ref [] in
  if not (match_atom (Rule.head ra) (Rule.head rb) undo_head) then begin
    unwind undo_head;
    false
  end
  else begin
    let targets = Array.of_list (Rule.body rb) in
    let rec search = function
      | [] -> true
      | a :: rest ->
        let rec try_target j =
          if j >= Array.length targets then false
          else begin
            let undo = ref [] in
            if match_atom a targets.(j) undo && search rest then true
            else begin
              unwind undo;
              try_target (j + 1)
            end
          end
        in
        try_target 0
    in
    search (Rule.body ra)
  end

let check_duplicates b rules =
  let seen : (string, Pos.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let key = canon_rule r in
      match Hashtbl.find_opt seen key with
      | Some first_pos ->
        add b ~code:"WP104" ~severity:Diagnostic.Warning ~pos:(Rule.pos r)
          (Printf.sprintf
           "duplicate rule: identical (up to variable renaming) to the rule \
            at %s"
             (Pos.to_string first_pos))
      | None -> Hashtbl.replace seen key (Rule.pos r))
    rules

let check_subsumption b rules =
  let rules = Array.of_list rules in
  let keys = Array.map canon_rule rules in
  let flagged = Array.make (Array.length rules) false in
  let flag victim by =
    if not flagged.(victim) then begin
      flagged.(victim) <- true;
      add b ~code:"WP105" ~severity:Diagnostic.Warning
        ~pos:(Rule.pos rules.(victim))
        (Printf.sprintf
           "rule is subsumed by the more general rule at %s (everything it \
            derives is already derived there)"
           (Pos.to_string (Rule.pos rules.(by))))
    end
  in
  for i = 0 to Array.length rules - 1 do
    for j = i + 1 to Array.length rules - 1 do
      if not (String.equal keys.(i) keys.(j)) then begin
        let i_subsumes_j = subsumes rules.(i) rules.(j) in
        let j_subsumes_i = subsumes rules.(j) rules.(i) in
        if i_subsumes_j && j_subsumes_i then
          (* mutually subsuming (e.g. one carries a redundant literal):
             keep the one with the shorter body, flag the other *)
          if List.length (Rule.body rules.(i)) <= List.length (Rule.body rules.(j))
          then flag j i
          else flag i j
        else if i_subsumes_j then flag j i
        else if j_subsumes_i then flag i j
      end
    done
  done

let check_cross_products b rules =
  List.iter
    (fun r ->
      let atoms = Array.of_list (Rule.body r) in
      let n = Array.length atoms in
      if n >= 2 then begin
        let parent = Array.init n (fun i -> i) in
        let rec find i = if parent.(i) = i then i else find parent.(i) in
        let union i j =
          let ri = find i and rj = find j in
          if ri <> rj then parent.(ri) <- rj
        in
        let var_home : (Symbol.t, int) Hashtbl.t = Hashtbl.create 16 in
        Array.iteri
          (fun i a ->
            List.iter
              (fun v ->
                match Hashtbl.find_opt var_home v with
                | Some j -> union i j
                | None -> Hashtbl.replace var_home v i)
              (Atom.vars a))
          atoms;
        let roots = Hashtbl.create 4 in
        Array.iteri (fun i _ -> Hashtbl.replace roots (find i) ()) atoms;
        let groups = Hashtbl.length roots in
        if groups > 1 then
          add b ~code:"WP106" ~severity:Diagnostic.Warning ~pos:(Rule.pos r)
            (Printf.sprintf
               "rule body is a cross-product: %d groups of atoms share no \
                variable (every combination joins)"
               groups)
      end)
    rules

let check_singleton_vars b rules =
  List.iter
    (fun r ->
      let counts : (Symbol.t, int) Hashtbl.t = Hashtbl.create 16 in
      let order = ref [] in
      let count_atom (a : Atom.t) =
        Array.iter
          (function
            | Term.Var v ->
              (match Hashtbl.find_opt counts v with
              | Some n -> Hashtbl.replace counts v (n + 1)
              | None ->
                Hashtbl.replace counts v 1;
                order := v :: !order)
            | Term.Const _ -> ())
          a.Atom.args
      in
      count_atom (Rule.head r);
      List.iter count_atom (Rule.body r);
      let singletons =
        List.filter
          (fun v ->
            Hashtbl.find counts v = 1
            && not (String.length (Symbol.name v) > 0
                    && (Symbol.name v).[0] = '_'))
          (List.rev !order)
      in
      match singletons with
      | [] -> ()
      | vs ->
        add b ~code:"WP107" ~severity:Diagnostic.Warning ~pos:(Rule.pos r)
          (Printf.sprintf
             "variable%s %s occur%s only once; use '_' for don't-care \
              positions"
             (if List.length vs = 1 then "" else "s")
             (names vs)
             (if List.length vs = 1 then "s" else "")))
    rules

let backward_reachable program query =
  let seen : (Symbol.t, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec visit p =
    if not (Hashtbl.mem seen p) then begin
      Hashtbl.replace seen p ();
      List.iter
        (fun r ->
          List.iter (fun (a : Atom.t) -> visit a.Atom.pred) (Rule.body r))
        (Program.rules_for program p)
    end
  in
  visit query;
  seen

let check_reachability b program fact_atoms query =
  let reachable = backward_reachable program query in
  List.iter
    (fun r ->
      if not (Hashtbl.mem reachable (Rule.head r).Atom.pred) then
        add b ~code:"WP103" ~severity:Diagnostic.Warning ~pos:(Rule.pos r)
          (Printf.sprintf
             "rule for %s is unreachable from query predicate %s"
             (Symbol.name (Rule.head r).Atom.pred)
             (Symbol.name query)))
    (Program.rules program);
  (* fact-only predicates never consulted while answering the query *)
  let by_pred : (Symbol.t, int * Pos.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (a : Atom.t) ->
      match Hashtbl.find_opt by_pred a.Atom.pred with
      | Some (n, first) -> Hashtbl.replace by_pred a.Atom.pred (n + 1, first)
      | None -> Hashtbl.replace by_pred a.Atom.pred (1, a.Atom.pos))
    fact_atoms;
  let unused =
    Hashtbl.fold
      (fun p (n, first) acc ->
        if Hashtbl.mem reachable p then acc else (p, n, first) :: acc)
      by_pred []
  in
  List.iter
    (fun (p, n, first) ->
      add b ~code:"WP101" ~severity:Diagnostic.Warning ~pos:first
        (Printf.sprintf
           "predicate %s (%d fact%s) is unused: not reachable from query \
            predicate %s"
           (Symbol.name p) n
           (if n = 1 then "" else "s")
           (Symbol.name query)))
    (List.sort (fun (p, _, _) (q, _, _) -> Symbol.compare p q) unused);
  reachable

let check_derivability b program fact_atoms reachable query =
  let derivable : (Symbol.t, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (a : Atom.t) -> Hashtbl.replace derivable a.Atom.pred ())
    fact_atoms;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r ->
        let h = (Rule.head r).Atom.pred in
        if
          (not (Hashtbl.mem derivable h))
          && List.for_all
               (fun (a : Atom.t) -> Hashtbl.mem derivable a.Atom.pred)
               (Rule.body r)
        then begin
          Hashtbl.replace derivable h ();
          changed := true
        end)
      (Program.rules program)
  done;
  let in_scope p =
    match reachable with None -> true | Some tbl -> Hashtbl.mem tbl p
  in
  let reported : (Symbol.t, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun r ->
      if in_scope (Rule.head r).Atom.pred then
        List.iter
          (fun (a : Atom.t) ->
            let p = a.Atom.pred in
            if
              (not (Hashtbl.mem derivable p)) && not (Hashtbl.mem reported p)
            then begin
              Hashtbl.replace reported p ();
              let message =
                if Program.is_edb program p then
                  Printf.sprintf
                    "extensional predicate %s has no facts; this atom can \
                     never match"
                    (Symbol.name p)
                else
                  Printf.sprintf
                    "predicate %s can never derive a fact (all of its rules \
                     depend on underivable predicates)"
                    (Symbol.name p)
              in
              add b ~code:"WP102" ~severity:Diagnostic.Warning ~pos:a.Atom.pos
                message
            end)
          (Rule.body r))
    (Program.rules program);
  match query with
  | Some q when not (Hashtbl.mem derivable q) ->
    if not (Hashtbl.mem reported q) then
      add b ~code:"WP102" ~severity:Diagnostic.Warning
        (Printf.sprintf
           "query predicate %s cannot derive any fact from the facts given \
            here"
           (Symbol.name q))
  | _ -> ()

let check_recursive_sccs b program (classification : Classify.t) =
  List.iter
    (fun (scc : Classify.scc) ->
      if scc.Classify.recursive then begin
        let in_scc p =
          List.exists (fun q -> Symbol.compare p q = 0) scc.Classify.preds
        in
        let pos =
          match
            List.find_opt
              (fun r -> in_scc (Rule.head r).Atom.pred)
              (Program.rules program)
          with
          | Some r -> Rule.pos r
          | None -> Pos.none
        in
        let witness =
          match Classify.cycle_witness program scc.Classify.preds with
          | Some cycle -> String.concat " -> " (List.map Symbol.name cycle)
          | None -> "<no cycle found>"
        in
        add b ~code:"WP201" ~severity:Diagnostic.Info ~pos
          (Printf.sprintf "recursive SCC {%s}: %s"
             (names scc.Classify.preds)
             witness)
      end)
    classification.Classify.sccs

(* ------------------------------------------------------------------ *)
(* Assembly *)

let finish b ~program ~facts ~classification ~selection =
  let diagnostics = List.sort Diagnostic.compare b.diags in
  let count severity =
    List.length
      (List.filter (fun (d : Diagnostic.t) -> d.Diagnostic.severity = severity)
         diagnostics)
  in
  let errors = count Diagnostic.Error in
  let warnings = count Diagnostic.Warning in
  let infos = count Diagnostic.Info in
  Metrics.add m_diag_errors errors;
  Metrics.add m_diag_warnings warnings;
  Metrics.add m_diag_infos infos;
  { diagnostics; errors; warnings; infos; program; facts; classification;
    selection }

let has_errors b =
  List.exists
    (fun (d : Diagnostic.t) -> d.Diagnostic.severity = Diagnostic.Error)
    b.diags

let stage2 b program ~fact_atoms ~query =
  let rules = Program.rules program in
  check_duplicates b rules;
  check_subsumption b rules;
  check_cross_products b rules;
  check_singleton_vars b rules;
  let reachable =
    match query with
    | Some q -> Some (check_reachability b program fact_atoms q)
    | None -> None
  in
  if fact_atoms <> [] then
    check_derivability b program fact_atoms reachable query;
  let classification = Classify.classify program in
  check_recursive_sccs b program classification;
  let selection = Selection.plan program in
  (classification, selection)

let run_raw ?query clauses =
  let b = { diags = [] } in
  check_arities b clauses;
  let rule_heads : (Symbol.t, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (raw : Parser.raw_clause) ->
      if raw.Parser.raw_body <> [] then
        Hashtbl.replace rule_heads raw.Parser.raw_head.Atom.pred ())
    clauses;
  List.iter (check_clause_shape b rule_heads) clauses;
  let query_sym =
    match query with
    | None -> None
    | Some name ->
      let q = Symbol.intern name in
      if Hashtbl.mem rule_heads q then Some q
      else begin
        add b ~code:"WP005" ~severity:Diagnostic.Error
          (Printf.sprintf "query predicate %s is not defined by any rule" name);
        None
      end
  in
  if has_errors b then
    finish b ~program:None ~facts:[] ~classification:None ~selection:None
  else begin
    let rules, fact_atoms =
      List.fold_left
        (fun (rs, fs) (raw : Parser.raw_clause) ->
          if raw.Parser.raw_body = [] then (rs, raw.Parser.raw_head :: fs)
          else
            ( Rule.make ~pos:raw.Parser.raw_pos raw.Parser.raw_head
                raw.Parser.raw_body
              :: rs,
              fs ))
        ([], []) clauses
    in
    let rules = List.rev rules and fact_atoms = List.rev fact_atoms in
    match Program.make rules with
    | exception Invalid_argument msg ->
      add b ~code:"WP003" ~severity:Diagnostic.Error msg;
      finish b ~program:None ~facts:[] ~classification:None ~selection:None
    | program ->
      let classification, selection =
        stage2 b program ~fact_atoms ~query:query_sym
      in
      finish b ~program:(Some program)
        ~facts:(List.map Atom.to_fact fact_atoms)
        ~classification:(Some classification) ~selection:(Some selection)
  end

let check_raw ?query clauses =
  Metrics.incr m_checks;
  Metrics.time m_check_time (fun () -> run_raw ?query clauses)

let syntax_error pos msg =
  let b = { diags = [] } in
  add b ~code:"WP000" ~severity:Diagnostic.Error ~pos ("syntax error: " ^ msg);
  finish b ~program:None ~facts:[] ~classification:None ~selection:None

let check_string ?query ?(file = "") src =
  Metrics.incr m_checks;
  Metrics.time m_check_time (fun () ->
      match Parser.parse_raw ~file src with
      | clauses -> run_raw ?query clauses
      | exception Parser.Error (pos, msg) -> syntax_error pos msg)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_file ?query path = check_string ?query ~file:path (read_file path)

let check_program ?query program =
  Metrics.incr m_checks;
  Metrics.time m_check_time (fun () ->
      let b = { diags = [] } in
      let query_sym =
        match query with
        | None -> None
        | Some name ->
          let q = Symbol.intern name in
          if Program.is_idb program q then Some q
          else begin
            add b ~code:"WP005" ~severity:Diagnostic.Error
              (Printf.sprintf "query predicate %s is not defined by any rule"
                 name);
            None
          end
      in
      let classification, selection =
        stage2 b program ~fact_atoms:[] ~query:query_sym
      in
      finish b ~program:(Some program) ~facts:[]
        ~classification:(Some classification) ~selection:(Some selection))

(* ------------------------------------------------------------------ *)
(* Renderers *)

let pp_human ppf r =
  List.iter
    (fun d -> Format.fprintf ppf "%a@." Diagnostic.pp d)
    r.diagnostics;
  (match r.classification with
  | Some c -> Format.fprintf ppf "class: %s@." (Classify.summary c)
  | None -> ());
  (match r.selection with
  | Some s -> Format.fprintf ppf "encoding: %s@." s.Selection.reason
  | None -> ());
  Format.fprintf ppf "%d error(s), %d warning(s), %d info(s)@." r.errors
    r.warnings r.infos

let pos_json (p : Pos.t) =
  if Pos.is_none p then Json.Null
  else
    Json.Obj
      [
        ("file", Json.Str p.Pos.file);
        ("line", Json.Num (float_of_int p.Pos.line));
        ("col", Json.Num (float_of_int p.Pos.col));
      ]

let diagnostic_json (d : Diagnostic.t) =
  Json.Obj
    [
      ("code", Json.Str d.Diagnostic.code);
      ("severity", Json.Str (Diagnostic.severity_name d.Diagnostic.severity));
      ("pos", pos_json d.Diagnostic.pos);
      ("message", Json.Str d.Diagnostic.message);
    ]

let classification_json ?program (c : Classify.t) =
  (* The per-SCC "cycle" witness needs the program's rules; [None] (and
     JSON null) when the classification was computed without one, or
     for non-recursive components. *)
  let cycle_json (s : Classify.scc) =
    match program with
    | Some prog when s.Classify.recursive -> (
      match Classify.cycle_witness prog s.Classify.preds with
      | Some cycle ->
        Json.List (List.map (fun p -> Json.Str (Symbol.name p)) cycle)
      | None -> Json.Null)
    | _ -> Json.Null
  in
  Json.Obj
    [
      ("name", Json.Str (Classify.cls_name c.Classify.cls));
      ("description", Json.Str (Classify.cls_describe c.Classify.cls));
      ("summary", Json.Str (Classify.summary c));
      ("linear", Json.Bool c.Classify.linear);
      ("recursive", Json.Bool c.Classify.recursive);
      ("piecewise_linear", Json.Bool c.Classify.piecewise_linear);
      ("strata", Json.Num (float_of_int c.Classify.strata));
      ("recursive_sccs", Json.Num (float_of_int c.Classify.recursive_sccs));
      ( "sccs",
        Json.List
          (List.map
             (fun (s : Classify.scc) ->
               Json.Obj
                 [
                   ( "preds",
                     Json.List
                       (List.map
                          (fun p -> Json.Str (Symbol.name p))
                          s.Classify.preds) );
                   ("recursive", Json.Bool s.Classify.recursive);
                   ("stratum", Json.Num (float_of_int s.Classify.stratum));
                   ("cycle", cycle_json s);
                 ])
             c.Classify.sccs) );
    ]

let selection_json (s : Selection.t) =
  Json.Obj
    [
      ("skip_acyclicity", Json.Bool s.Selection.skip_acyclicity);
      ("fo_eligible", Json.Bool s.Selection.fo_eligible);
      ("reason", Json.Str s.Selection.reason);
    ]

let json_schema_version = "whyprov.check/2"

let to_json ?file r =
  Json.Obj
    ([ ("schema", Json.Str json_schema_version) ]
    @ (match file with Some f -> [ ("file", Json.Str f) ] | None -> [])
    @ [
        ("ok", Json.Bool (ok r));
        ("errors", Json.Num (float_of_int r.errors));
        ("warnings", Json.Num (float_of_int r.warnings));
        ("infos", Json.Num (float_of_int r.infos));
        ( "class",
          match r.classification with
          | Some c -> classification_json ?program:r.program c
          | None -> Json.Null );
        ( "selection",
          match r.selection with
          | Some s -> selection_json s
          | None -> Json.Null );
        ("diagnostics", Json.List (List.map diagnostic_json r.diagnostics));
      ])
