(** Precise classification of a Datalog program into the fragment lattice
    studied by the paper: the complexity of why-provenance drops from
    NP-hard (general Dat) to tractable for non-recursive (NRDat) and, for
    some variants, linear (LDat) programs. Piecewise-linear programs sit
    between LDat and Dat: every rule recurses through at most one atom of
    its head's own SCC. *)

open Datalog

type cls =
  | Nrdat     (** non-recursive: the predicate graph is a DAG *)
  | Ldat      (** linear: at most one intensional atom per body *)
  | Pwl_dat   (** piecewise-linear: at most one same-SCC atom per body *)
  | Dat       (** general recursive Datalog *)

type scc = {
  preds : Symbol.t list;  (** members, in Tarjan discovery order *)
  recursive : bool;       (** size > 1, or a self-loop *)
  stratum : int;          (** 0 for extensional-only components *)
}

type t = {
  cls : cls;
  linear : bool;
  recursive : bool;
  piecewise_linear : bool;
  sccs : scc list;        (** dependencies before dependents *)
  strata : int;           (** stratification depth: max stratum *)
  recursive_sccs : int;
}

val classify : Program.t -> t

val cls_name : cls -> string
(** Stable short name: ["NRDat"], ["LDat"], ["PwlDat"], ["Dat"]. *)

val cls_describe : cls -> string
(** Human phrase, e.g. ["piecewise-linear recursive"]. *)

val summary : t -> string
(** One-line report, e.g.
    ["LDat (linear recursive; linear; 2 strata; 1 recursive SCC)"]. *)

val cycle_witness : Program.t -> Symbol.t list -> Symbol.t list option
(** [cycle_witness program scc_preds] returns a predicate cycle
    [p1; ...; pn; p1] inside the given SCC, for diagnostics. *)
