(** Analysis-driven encoding selection.

    The SAT encoding of why-provenance spends most of its clauses on
    forbidding cyclic support (the acyclicity constraint). For a
    non-recursive program the rule-instance graph of {e any} database is
    already a DAG, so every candidate model is acyclic and those clauses
    are tautological — the planner tells the encoder to drop them.
    Similarly, small constant-free non-recursive programs admit the
    first-order rewriting of {!Provenance.Fo_rewrite}, which decides
    membership without a solver at all.

    Plans are memoized per program (by physical identity); consulting
    the planner from every [Encode.make] is cheap. Decisions are counted
    under the [analysis.selection.*] metrics. *)

open Datalog

type t = {
  classification : Classify.t;
  skip_acyclicity : bool;
      (** sound to omit acyclicity clauses for every database *)
  fo_eligible : bool;
      (** non-recursive, constant-free and small enough to FO-unfold *)
  reason : string;  (** one-line justification, for logs and JSON *)
}

val plan : Program.t -> t
val skip_acyclicity : Program.t -> bool
val fo_eligible : Program.t -> bool

val fo_cone : Program.t -> Symbol.t -> Program.t option
(** Query-cone widening of {!fo_eligible}: even when the whole program
    fails the FO gates, the backward cone of one query predicate may be
    non-recursive, constant-free and small. Returns the cone subprogram
    to FO-rewrite in that case — every derivation of a query fact uses
    only cone rules, so the rewriting over the cone decides membership
    for the full program. [None] when the query is not intensional, the
    cone is the whole program (the whole-program gate already decided),
    or a gate fails. Memoized per (program, query) by physical identity;
    the returned cone is physically stable across calls, so callers may
    key further caches on it. Counted as [analysis.selection.fo_cone]. *)

val constant_free : Program.t -> bool
(** No constants in any rule atom (facts live in the database). *)

val max_fo_rules : int
(** Rule-count gate on FO eligibility (the unfolding is exponential). *)
