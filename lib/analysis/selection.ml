open Datalog
module Metrics = Util.Metrics

let m_plans = Metrics.counter "analysis.plans"
let m_skip_acyclic = Metrics.counter "analysis.selection.skip_acyclicity"
let m_keep_acyclic = Metrics.counter "analysis.selection.keep_acyclicity"
let m_fo_eligible = Metrics.counter "analysis.selection.fo_eligible"

type t = {
  classification : Classify.t;
  skip_acyclicity : bool;
  fo_eligible : bool;
  reason : string;
}

(* The FO rewriting (Fo_rewrite) unfolds the program into a union of
   conjunctive queries; it requires a non-recursive, constant-free
   program and its size is exponential in the unfolding depth, so gate
   it on a small rule count. *)
let max_fo_rules = 16

let constant_free program =
  let atom_ok (a : Atom.t) =
    Array.for_all
      (fun t -> match t with Term.Var _ -> true | Term.Const _ -> false)
      a.Atom.args
  in
  List.for_all
    (fun r -> atom_ok (Rule.head r) && List.for_all atom_ok (Rule.body r))
    (Program.rules program)

let compute program =
  let classification = Classify.classify program in
  let skip_acyclicity = not classification.Classify.recursive in
  let fo_eligible =
    skip_acyclicity && constant_free program
    && List.length (Program.rules program) <= max_fo_rules
  in
  let reason =
    if skip_acyclicity then
      Printf.sprintf
        "%s: every proof DAG is acyclic, acyclicity clauses dropped%s"
        (Classify.cls_name classification.Classify.cls)
        (if fo_eligible then "; FO-rewrite eligible" else "")
    else
      Printf.sprintf "%s: recursive, acyclicity encoding required"
        (Classify.cls_name classification.Classify.cls)
  in
  { classification; skip_acyclicity; fo_eligible; reason }

(* Encode.make consults the plan once per CNF build and batch workers
   encode on separate domains, so memoize per program by physical
   identity behind an atomic. Lost updates only cost a recomputation. *)
let cache : (Program.t * t) list Atomic.t = Atomic.make []
let cache_limit = 16

let plan program =
  Metrics.incr m_plans;
  let result =
    match List.find_opt (fun (p, _) -> p == program) (Atomic.get cache) with
    | Some (_, plan) -> plan
    | None ->
      let plan = compute program in
      let entries = (program, plan) :: Atomic.get cache in
      let entries =
        if List.length entries > cache_limit then
          List.filteri (fun i _ -> i < cache_limit) entries
        else entries
      in
      Atomic.set cache entries;
      plan
  in
  if result.skip_acyclicity then Metrics.incr m_skip_acyclic
  else Metrics.incr m_keep_acyclic;
  if result.fo_eligible then Metrics.incr m_fo_eligible;
  result

let skip_acyclicity program = (plan program).skip_acyclicity
let fo_eligible program = (plan program).fo_eligible

(* --- Query-cone widening -------------------------------------------- *)

let m_fo_cone = Metrics.counter "analysis.selection.fo_cone"

(* Rules whose head predicate is backward-reachable from the query.
   Every derivation of a query fact uses only such rules (the cone is
   backward-closed), so the cone subprogram derives exactly the same
   query facts from any database — with exactly the same proof trees. *)
let cone_rules program query =
  let relevant : (Symbol.t, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec visit p =
    if not (Hashtbl.mem relevant p) then begin
      Hashtbl.replace relevant p ();
      List.iter
        (fun r ->
          List.iter (fun (a : Atom.t) -> visit a.Atom.pred) (Rule.body r))
        (Program.rules_for program p)
    end
  in
  visit query;
  List.filter
    (fun r -> Hashtbl.mem relevant (Rule.head r).Atom.pred)
    (Program.rules program)

(* Memoized per (program, query) by physical identity on the program:
   callers key further caches (Explain's compiled rewritings) on the
   returned cone, so it must be physically stable across calls. *)
let cone_cache : (Program.t * Symbol.t * Program.t option) list Atomic.t =
  Atomic.make []

let fo_cone program query =
  let result =
    match
      List.find_opt
        (fun (p, q, _) -> p == program && Symbol.equal q query)
        (Atomic.get cone_cache)
    with
    | Some (_, _, res) -> res
    | None ->
      let res =
        if not (Program.is_idb program query) then None
        else begin
          let rules = cone_rules program query in
          if List.length rules = List.length (Program.rules program) then
            (* The cone is the whole program: the whole-program
               [fo_eligible] gate has already decided. *)
            None
          else
            let cone = Program.make rules in
            let cls = Classify.classify cone in
            if
              (not cls.Classify.recursive)
              && constant_free cone
              && List.length rules <= max_fo_rules
            then Some cone
            else None
        end
      in
      let entries = (program, query, res) :: Atomic.get cone_cache in
      let entries =
        if List.length entries > cache_limit then
          List.filteri (fun i _ -> i < cache_limit) entries
        else entries
      in
      Atomic.set cone_cache entries;
      res
  in
  if result <> None then Metrics.incr m_fo_cone;
  result
