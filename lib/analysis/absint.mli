(** Abstract interpretation of Datalog programs over an extensional
    database: three monotone analyses computed in one pass and consumed
    downstream by the cost-based join planner ({!Datalog.Plan}), the
    why-provenance pipeline, and the [whyprov analyze] report.

    {ol
    {- {b Binding/constant analysis.} Every predicate argument gets a
       value in the lattice [Bot ⊑ Consts(S) ⊑ Top] (|S| ≤
       {!max_consts}): [Bot] means "no fact reaches this position",
       [Consts S] "only constants from S", [Top] "anything". EDB
       positions are seeded from the database, IDB positions from a
       least fixpoint over the rules. A singleton [Consts] is a
       {e grounded} argument.}
    {- {b Cardinality/selectivity estimation.} Per-predicate row counts
       and per-column distinct-value bounds ({!Datalog.Stats.t}), exact
       on the EDB and propagated through rule bodies with System-R
       style join estimates, SCC by SCC in dependency order; recursive
       components are iterated a few rounds and then widened to the
       active-domain cap, so termination never depends on the
       estimates converging.}
    {- {b Query-relevance slicing.} Rules that provably cannot
       contribute any derivation of the query predicate are dropped,
       each with a machine-checkable {!reason}; {!certify} re-validates
       a slice against the reference structural engine.}}

    All three are over-approximations: they may only make the planner
    slower or the slice larger than optimal, never change a model, a
    rank, or a why-provenance set. The differential tests and the
    [whyfuzz] harness enforce exactly that. *)

open Datalog

(** {1 The constant lattice} *)

type value =
  | Bot                       (** unreachable position *)
  | Consts of Symbol.t list   (** at most {!max_consts} constants, sorted *)
  | Top                       (** unbounded *)

val max_consts : int
(** Width bound of [Consts]; joins exceeding it widen to [Top]. *)

val join : value -> value -> value
val meet : value -> value -> value
val pp_value : Format.formatter -> value -> unit

(** {1 Analysis} *)

type t
(** The result of {!analyze}: classification, per-argument constant
    values, derivability, and cardinality estimates. *)

val analyze : Program.t -> Database.t -> t
(** Runs all analyses. Cost is a small number of passes over the rules
    plus one pass over the database; safe to run per query. *)

val constants : t -> Symbol.t -> value array option
(** Per-argument constant values of a schema predicate. *)

val grounded : t -> (Symbol.t * int * Symbol.t) list
(** All grounded arguments [(pred, column, constant)]: positions that
    hold a single known constant in every model fact. Schema order. *)

val derivable : t -> Symbol.t -> bool
(** [false] means the predicate is {e provably empty} in the least
    model ([true] is an over-approximation: it may still be empty). *)

val stats : t -> Stats.t
(** Cardinality estimates for every schema predicate, suitable for
    [Eval.seminaive ~stats] / [Plan.compile ~stats]. Estimates under
    the usual independence assumptions — exact on stored facts, but not
    guaranteed bounds on derived ones; they only steer join ordering,
    never semantics. *)

val adornments : t -> query:Symbol.t -> (Symbol.t * string) list
(** Adorned binding patterns reachable from an all-bound query, with
    left-to-right sideways information passing: [(pred, "bfb...")]
    pairs, ['b'] bound / ['f'] free, sorted. Intensional predicates
    only; empty if [query] is not intensional. *)

val pp : Format.formatter -> t -> unit
(** Deterministic multi-line report (constants, cardinalities, provably
    empty predicates), as printed by [whyprov analyze]. Intensional
    predicates are marked with [*]. *)

val json_schema_version : string
(** ["whyprov.analyze/1"], the ["schema"] field of {!to_json}. *)

val to_json : ?query:Symbol.t -> t -> Util.Metrics.Json.t
(** The versioned machine-readable report emitted by
    [whyprov analyze --format json] (docs/ANALYSIS.md): per-predicate
    constant values, derivability and cardinality estimates, the
    grounded arguments, and — with [query] — the adorned binding
    patterns and the query-relevance slice. Deterministic (schema
    order, sorted lists). *)

(** {1 Query-relevance slicing} *)

type reason =
  | Unreachable
      (** head predicate not backward-reachable from the query through
          live rules *)
  | Underivable of Symbol.t
      (** the named body predicate is provably empty *)
  | Constant_conflict
      (** the constant analysis refutes the body (e.g. a constant that
          cannot occur at that position) *)

val reason_to_string : reason -> string

type slice = {
  s_query : Symbol.t;
  s_original : Program.t;
  s_program : Program.t;  (** the kept rules, re-numbered *)
  s_kept : Rule.t list;
  s_dropped : (Rule.t * reason) list;
  s_relevant : Symbol.t list;     (** cone of influence, sorted *)
  s_edb_dropped : Symbol.t list;  (** EDB predicates outside the cone *)
}

val slice : t -> query:Symbol.t -> slice
(** Drops rules that provably contribute to no derivation of [query].
    Rules whose head {e is} [query] are always kept, so the sliced
    program still defines the query predicate; likewise one dead rule
    is retained for any cone predicate that would otherwise lose its
    intensional status (stored facts of an extensional predicate are
    why-provenance leaves, so the flip would change why-sets even
    though such a rule never fires). Soundness contract: the
    model restricted to [s_relevant], the ranks of those facts, and the
    why-provenance of any [query] fact are identical under
    [s_program]+{!relevant_db} and the original program+database. *)

val relevant_db : slice -> Database.t -> Database.t
(** The database restricted to [s_relevant] predicates — the facts the
    sliced evaluation may consult. *)

val certify : slice -> Database.t -> bool
(** Re-establishes every drop reason and the model/rank equality over
    [s_relevant] using the reference structural engine
    ({!Datalog.Eval.seminaive_structural}). [true] means the slice is
    proven sound for this database; the fuzz harness calls this on
    every generated instance. *)

val pp_slice : Format.formatter -> slice -> unit
(** Deterministic report: counts, dropped rules with reasons, relevant
    predicates. *)
