open Datalog

type severity =
  | Error
  | Warning
  | Info

type t = {
  code : string;
  severity : severity;
  pos : Pos.t;
  message : string;
}

let make ~code ~severity ?(pos = Pos.none) message =
  { code; severity; pos; message }

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare d1 d2 =
  let c = Pos.compare d1.pos d2.pos in
  if c <> 0 then c
  else
    let c = Int.compare (severity_rank d1.severity) (severity_rank d2.severity) in
    if c <> 0 then c
    else
      let c = String.compare d1.code d2.code in
      if c <> 0 then c else String.compare d1.message d2.message

let pp ppf d =
  if Pos.is_none d.pos then
    Format.fprintf ppf "%s[%s]: %s" (severity_name d.severity) d.code d.message
  else
    Format.fprintf ppf "%a: %s[%s]: %s" Pos.pp d.pos (severity_name d.severity)
      d.code d.message

let to_string d = Format.asprintf "%a" pp d
