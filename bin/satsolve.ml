(* satsolve — standalone DIMACS front end to the CDCL substrate.

   Usage: satsolve [--stats[=json]] FILE.cnf
   Prints "s SATISFIABLE" with a "v ..." model line, or "s UNSATISFIABLE",
   in the conventional SAT-competition output format, plus solver
   statistics on stderr. With --stats the pipeline metrics registry
   (docs/OBSERVABILITY.md) is enabled and its snapshot is printed on
   stderr as well — human-readable by default, one JSON line with
   --stats=json. *)

let usage () =
  prerr_endline "usage: satsolve [--stats[=json]] FILE.cnf";
  exit 2

let () =
  let stats = ref None in
  let paths =
    List.filter
      (fun arg ->
        match arg with
        | "--stats" | "--stats=human" ->
          stats := Some `Human;
          false
        | "--stats=json" ->
          stats := Some `Json;
          false
        | _ -> true)
      (List.tl (Array.to_list Sys.argv))
  in
  match paths with
  | [ path ] ->
    if !stats <> None then Util.Metrics.set_enabled true;
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    let nvars, clauses = Sat.Dimacs.of_string src in
    let solver = Sat.Solver.create () in
    Sat.Solver.ensure_vars solver nvars;
    List.iter (Sat.Solver.add_clause solver) clauses;
    let result = Sat.Solver.solve solver in
    let stats' = Sat.Solver.stats solver in
    Printf.eprintf
      "c conflicts=%d decisions=%d propagations=%d restarts=%d deleted=%d\n"
      stats'.Sat.Solver.conflicts stats'.Sat.Solver.decisions
      stats'.Sat.Solver.propagations stats'.Sat.Solver.restarts
      stats'.Sat.Solver.deleted_clauses;
    (match !stats with
    | Some `Json -> prerr_endline (Util.Metrics.to_json_string ())
    | Some `Human -> prerr_string (Util.Metrics.to_string ())
    | None -> ());
    (match result with
    | Sat.Solver.Sat ->
      print_endline "s SATISFIABLE";
      let model = Sat.Solver.model solver in
      let buffer = Buffer.create 256 in
      Buffer.add_string buffer "v";
      Array.iteri
        (fun v value ->
          if v < nvars then
            Buffer.add_string buffer
              (Printf.sprintf " %d" (if value then v + 1 else -(v + 1))))
        model;
      Buffer.add_string buffer " 0";
      print_endline (Buffer.contents buffer);
      exit 10
    | Sat.Solver.Unsat ->
      print_endline "s UNSATISFIABLE";
      exit 20)
  | _ -> usage ()
