(* satsolve — standalone DIMACS front end to the CDCL substrate.

   Usage: satsolve FILE.cnf
   Prints "s SATISFIABLE" with a "v ..." model line, or "s UNSATISFIABLE",
   in the conventional SAT-competition output format, plus solver
   statistics on stderr. *)

let () =
  match Sys.argv with
  | [| _; path |] ->
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    let nvars, clauses = Sat.Dimacs.of_string src in
    let solver = Sat.Solver.create () in
    Sat.Solver.ensure_vars solver nvars;
    List.iter (Sat.Solver.add_clause solver) clauses;
    let result = Sat.Solver.solve solver in
    let stats = Sat.Solver.stats solver in
    Printf.eprintf
      "c conflicts=%d decisions=%d propagations=%d restarts=%d deleted=%d\n"
      stats.Sat.Solver.conflicts stats.Sat.Solver.decisions
      stats.Sat.Solver.propagations stats.Sat.Solver.restarts
      stats.Sat.Solver.deleted_clauses;
    (match result with
    | Sat.Solver.Sat ->
      print_endline "s SATISFIABLE";
      let model = Sat.Solver.model solver in
      let buffer = Buffer.create 256 in
      Buffer.add_string buffer "v";
      Array.iteri
        (fun v value ->
          if v < nvars then
            Buffer.add_string buffer
              (Printf.sprintf " %d" (if value then v + 1 else -(v + 1))))
        model;
      Buffer.add_string buffer " 0";
      print_endline (Buffer.contents buffer);
      exit 10
    | Sat.Solver.Unsat ->
      print_endline "s UNSATISFIABLE";
      exit 20)
  | _ ->
    prerr_endline "usage: satsolve FILE.cnf";
    exit 2
