(* satsolve — standalone DIMACS front end to the CDCL substrate.

   Usage: satsolve [--stats[=json]] [--trace FILE] [--progress[=N]]
                   [--no-preprocess] FILE.cnf
   Prints "s SATISFIABLE" with a "v ..." model line, or "s UNSATISFIABLE",
   in the conventional SAT-competition output format, plus solver
   statistics on stderr — including the learnt-clause LBD distribution.
   The formula is run through the SatELite-style preprocessor
   (Sat.Preprocess) before solving, with no frozen variables since the
   DIMACS model is reconstructed afterwards; --no-preprocess feeds the
   raw clauses to the solver instead. With --stats the pipeline metrics
   registry (docs/OBSERVABILITY.md) is enabled and its snapshot is
   printed on stderr as well — human-readable by default, one JSON line
   with --stats=json. --trace FILE records the structured event timeline
   and writes Chrome trace-event JSON on exit; --progress[=N] prints a
   live telemetry line every N conflicts (default 2048) and a one-line
   summary at the end. *)

let usage () =
  prerr_endline
    "usage: satsolve [--stats[=json]] [--trace FILE] [--progress[=N]] \
     [--no-preprocess] FILE.cnf";
  exit 2

let () =
  let stats = ref None in
  let trace = ref None in
  let progress = ref None in
  let preprocess = ref true in
  let rec filter args =
    match args with
    | [] -> []
    | ("--stats" | "--stats=human") :: rest ->
      stats := Some `Human;
      filter rest
    | "--stats=json" :: rest ->
      stats := Some `Json;
      filter rest
    | "--trace" :: path :: rest ->
      trace := Some path;
      filter rest
    | "--progress" :: rest ->
      progress := Some 2048;
      filter rest
    | "--no-preprocess" :: rest ->
      preprocess := false;
      filter rest
    | arg :: rest when String.length arg > 11 && String.sub arg 0 11 = "--progress=" ->
      (match int_of_string_opt (String.sub arg 11 (String.length arg - 11)) with
      | Some n when n > 0 -> progress := Some n
      | _ -> usage ());
      filter rest
    | arg :: rest -> arg :: filter rest
  in
  let paths = filter (List.tl (Array.to_list Sys.argv)) in
  match paths with
  | [ path ] ->
    if !stats <> None then Util.Metrics.set_enabled true;
    if !trace <> None then Util.Tracing.set_enabled true;
    (match !progress with
    | None -> ()
    | Some interval ->
      Sat.Solver.set_progress ~interval
        (Some
           (fun (p : Sat.Solver.progress) ->
             Printf.eprintf
               "c [progress] conflicts=%d restarts=%d learnts=%d lbd-avg=%.1f \
                level=%d\n\
                %!"
               p.Sat.Solver.p_conflicts p.Sat.Solver.p_restarts
               p.Sat.Solver.p_learnts p.Sat.Solver.p_lbd_avg
               p.Sat.Solver.p_decision_level)));
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    let nvars, clauses =
      try Sat.Dimacs.of_string src
      with Sat.Dimacs.Parse_error _ as e ->
        Printf.eprintf "satsolve: %s: %s\n" path (Sat.Dimacs.error_message e);
        exit 1
    in
    (* Nothing downstream reads individual DIMACS variables, so no
       variable is frozen: the model is reconstructed below before the
       "v" line is printed. *)
    let pre =
      if !preprocess then
        Some (Sat.Preprocess.simplify ~nvars ~frozen:(fun _ -> false) clauses)
      else None
    in
    let clauses =
      match pre with Some p -> Sat.Preprocess.clauses p | None -> clauses
    in
    (match pre with
    | None -> ()
    | Some p ->
      let s = Sat.Preprocess.stats p in
      Printf.eprintf
        "c preprocess: clauses %d->%d literals %d->%d eliminated=%d fixed=%d \
         subsumed=%d strengthened=%d failed=%d rounds=%d\n"
        s.Sat.Preprocess.original_clauses s.Sat.Preprocess.clauses
        s.Sat.Preprocess.original_literals s.Sat.Preprocess.literals
        s.Sat.Preprocess.eliminated_vars s.Sat.Preprocess.fixed_vars
        s.Sat.Preprocess.subsumed_clauses s.Sat.Preprocess.strengthened_clauses
        s.Sat.Preprocess.failed_literals s.Sat.Preprocess.rounds);
    let solver = Sat.Solver.create () in
    Sat.Solver.ensure_vars solver nvars;
    List.iter (Sat.Solver.add_clause solver) clauses;
    let result = Sat.Solver.solve solver in
    let stats' = Sat.Solver.stats solver in
    Printf.eprintf
      "c conflicts=%d decisions=%d propagations=%d restarts=%d learnts=%d \
       deleted=%d\n"
      stats'.Sat.Solver.conflicts stats'.Sat.Solver.decisions
      stats'.Sat.Solver.propagations stats'.Sat.Solver.restarts
      stats'.Sat.Solver.learnt_clauses stats'.Sat.Solver.deleted_clauses;
    (* Learnt-clause LBD distribution, "lbd:count" ascending; the last
       bin (32) collects every LBD >= 32. Omitted when nothing was
       learnt. *)
    (match stats'.Sat.Solver.lbd with
    | [] -> ()
    | dist ->
      let buffer = Buffer.create 128 in
      Buffer.add_string buffer "c lbd-distribution";
      List.iter
        (fun (lbd, count) ->
          Buffer.add_string buffer (Printf.sprintf " %d:%d" lbd count))
        dist;
      prerr_endline (Buffer.contents buffer));
    (match !progress with
    | None -> ()
    | Some _ ->
      let t = Sat.Solver.progress_totals () in
      Printf.eprintf
        "c progress: %d solve(s), %d conflict(s), %d restart(s), %d learnt \
         clause(s)\n\
         %!"
        t.Sat.Solver.t_solves t.Sat.Solver.t_conflicts
        t.Sat.Solver.t_restarts t.Sat.Solver.t_learnt_clauses);
    (match !stats with
    | Some `Json -> prerr_endline (Util.Metrics.to_json_string ())
    | Some `Human -> prerr_string (Util.Metrics.to_string ())
    | None -> ());
    (match !trace with
    | None -> ()
    | Some path ->
      Util.Tracing.set_enabled false;
      (try
         let oc = open_out path in
         Util.Tracing.write_chrome oc;
         close_out oc
       with Sys_error msg -> Printf.eprintf "satsolve: --trace: %s\n" msg));
    (match result with
    | Sat.Solver.Sat ->
      print_endline "s SATISFIABLE";
      let model = Sat.Solver.model solver in
      let model =
        match pre with
        | Some p -> Sat.Preprocess.extend_model p model
        | None -> model
      in
      let buffer = Buffer.create 256 in
      Buffer.add_string buffer "v";
      Array.iteri
        (fun v value ->
          if v < nvars then
            Buffer.add_string buffer
              (Printf.sprintf " %d" (if value then v + 1 else -(v + 1))))
        model;
      Buffer.add_string buffer " 0";
      print_endline (Buffer.contents buffer);
      exit 10
    | Sat.Solver.Unsat ->
      print_endline "s UNSATISFIABLE";
      exit 20)
  | _ -> usage ()
