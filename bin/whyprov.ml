(* whyprov — command-line front end to the why-provenance pipeline.

   A program file mixes rules and facts in the textual Datalog syntax:

     % transitive closure
     tc(X,Y) :- edge(X,Y).
     tc(X,Z) :- tc(X,Y), edge(Y,Z).
     edge(a,b). edge(b,c).

   Commands:
     whyprov answers  FILE -q tc
     whyprov explain  FILE -q tc -t a,c [--limit N] [--tc-acyclicity]
     whyprov batch    FILE -q tc [-t a,c -t a,d | --all] [--jobs N] [--budget N]
     whyprov check    FILE [-q tc] [--format=json] [--deny-warnings]
     whyprov member   FILE -q tc -t a,c -s 'edge(a,b). edge(b,c).' [--variant un]
     whyprov tree     FILE -q tc -t a,c [--dot]
     whyprov stats    FILE -q tc -t a,c

   check is the static analyzer (docs/ANALYSIS.md): positioned
   diagnostics with stable WPxxx codes, the program-class report and the
   encoding-selection decision; explain and batch run it implicitly and
   refuse programs with errors.

   Every command additionally accepts --stats[=json] and
   --stats-out FILE, which enable the pipeline-wide metrics registry
   (see docs/OBSERVABILITY.md) and emit a snapshot when the process
   exits; --trace FILE / --trace-jsonl FILE, which record the
   structured event timeline (Chrome trace-event JSON for Perfetto /
   chrome://tracing, or line-oriented JSON) and flush it on exit; and
   --progress[=N], which prints live SAT search telemetry to stderr
   every N conflicts plus a final one-line summary. *)

module D = Datalog
module P = Provenance
module A = Whyprov_analysis
module Metrics = Util.Metrics

(* Enable the metrics registry and register the snapshot emission for
   process exit, so commands that terminate through [exit] (check) and
   the repl all report. Human-readable output goes to stderr to keep
   the command's stdout clean; JSON goes to stdout (one line, last)
   and/or to --stats-out FILE. *)
let setup_stats stats stats_out =
  if stats <> None || stats_out <> None then begin
    Metrics.set_enabled true;
    at_exit (fun () ->
        (match stats_out with
        | Some path -> (
          (* Running at exit: report a bad path instead of aborting the
             process with an uncaught exception. *)
          try
            let oc = open_out path in
            output_string oc (Metrics.to_json_string ());
            output_char oc '\n';
            close_out oc
          with Sys_error msg -> Printf.eprintf "whyprov: --stats-out: %s\n" msg)
        | None -> ());
        match stats with
        | Some `Json -> print_endline (Metrics.to_json_string ())
        | Some `Human -> prerr_string (Metrics.to_string ())
        | None -> ())
  end

(* Enable the event-trace recorder and register the flush for process
   exit. Recording is stopped before flushing so the writers see a
   quiescent buffer set (worker domains are joined long before exit). *)
let setup_tracing trace trace_jsonl =
  if trace <> None || trace_jsonl <> None then begin
    Util.Tracing.set_enabled true;
    at_exit (fun () ->
        Util.Tracing.set_enabled false;
        let write flag path writer =
          try
            let oc = open_out path in
            writer oc;
            close_out oc
          with Sys_error msg -> Printf.eprintf "whyprov: %s: %s\n" flag msg
        in
        (match trace with
        | Some path -> write "--trace" path Util.Tracing.write_chrome
        | None -> ());
        match trace_jsonl with
        | Some path -> write "--trace-jsonl" path Util.Tracing.write_jsonl
        | None -> ())
  end

(* Live solver telemetry: a MiniSat-style stderr line every N conflicts
   (the callback runs on whichever domain is solving, hence the mutex)
   and a deterministic one-line summary at exit. *)
let progress_lock = Mutex.create ()

let setup_progress progress =
  match progress with
  | None -> ()
  | Some interval ->
    Sat.Solver.set_progress ~interval
      (Some
         (fun (p : Sat.Solver.progress) ->
           Mutex.lock progress_lock;
           Printf.eprintf
             "whyprov: [sat] conflicts=%d restarts=%d learnts=%d lbd-avg=%.1f \
              level=%d\n\
              %!"
             p.Sat.Solver.p_conflicts p.Sat.Solver.p_restarts
             p.Sat.Solver.p_learnts p.Sat.Solver.p_lbd_avg
             p.Sat.Solver.p_decision_level;
           Mutex.unlock progress_lock));
    at_exit (fun () ->
        let t = Sat.Solver.progress_totals () in
        Printf.eprintf
          "whyprov: progress: %d solve(s), %d conflict(s), %d restart(s), %d \
           learnt clause(s)\n\
           %!"
          t.Sat.Solver.t_solves t.Sat.Solver.t_conflicts
          t.Sat.Solver.t_restarts t.Sat.Solver.t_learnt_clauses)

(* Enable the rule-level profiler and register the report for process
   exit: bare [--profile] prints the human tree to stderr (stdout stays
   diffable), [--profile=FILE] writes the whyprov.profile/1 JSON
   document to FILE. The accumulated profile covers every fixpoint the
   command ran (explain/batch materializations included). *)
let setup_profile profile =
  match profile with
  | None -> ()
  | Some target ->
    D.Profile.set_enabled true;
    at_exit (fun () ->
        D.Profile.set_enabled false;
        let prof = D.Profile.snapshot () in
        if target = "" then Format.eprintf "%a" (D.Profile.pp ?top:None) prof
        else
          try
            let oc = open_out target in
            output_string oc (Metrics.Json.to_string (D.Profile.to_json prof));
            output_char oc '\n';
            close_out oc
          with Sys_error msg -> Printf.eprintf "whyprov: --profile: %s\n" msg)

let setup_obs stats stats_out trace trace_jsonl progress profile =
  setup_stats stats stats_out;
  setup_tracing trace trace_jsonl;
  setup_progress progress;
  setup_profile profile

let load_file path =
  let rules, facts = D.Parser.split (D.Parser.parse_file path) in
  (D.Program.make rules, D.Database.of_list facts)

(* Load for explain/batch: run the static analyzer first. Errors abort
   with the positioned diagnostics on stderr; warnings are printed (to
   stderr, keeping stdout diffable) but do not block. *)
let load_checked ?query path =
  match D.Parser.parse_raw_file path with
  | exception D.Parser.Error (pos, msg) ->
    Format.eprintf "whyprov: %s@." (D.Parser.error_message pos msg);
    exit 1
  | raw ->
    let result = A.Check.check_raw ?query raw in
    List.iter
      (fun (d : A.Diagnostic.t) ->
        if d.A.Diagnostic.severity <> A.Diagnostic.Info then
          Format.eprintf "%a@." A.Diagnostic.pp d)
      result.A.Check.diagnostics;
    (match result.A.Check.program with
    | None ->
      Format.eprintf
        "whyprov: %s has %d error(s); see 'whyprov check %s'@." path
        result.A.Check.errors path;
      exit 1
    | Some program -> (program, D.Database.of_list result.A.Check.facts))

let parse_tuple s = String.split_on_char ',' s |> List.map String.trim

let parse_subset s =
  let clauses = D.Parser.parse_string s in
  List.fold_left
    (fun acc clause ->
      match clause with
      | D.Parser.Clause_fact f -> D.Fact.Set.add f acc
      | D.Parser.Clause_rule _ -> failwith "subset must contain only facts")
    D.Fact.Set.empty clauses

(* Analysis-driven preparation shared by explain/batch: runs the
   abstract-interpretation layer when cost planning or slicing is
   requested, applies the slice, and returns the (possibly sliced)
   program and database plus the planner statistics. The slice report
   goes to stderr, keeping stdout diffable against an unsliced run. *)
let prepare ~plan ~slice query_pred program db =
  if plan = `Heuristic && not slice then (program, db, None)
  else begin
    let analysis = A.Absint.analyze program db in
    let stats =
      if plan = `Cost then Some (A.Absint.stats analysis) else None
    in
    if slice then begin
      let s = A.Absint.slice analysis ~query:(D.Symbol.intern query_pred) in
      Format.eprintf "%a@." A.Absint.pp_slice s;
      (s.A.Absint.s_program, A.Absint.relevant_db s db, stats)
    end
    else (program, db, stats)
  end

(* --- Commands --------------------------------------------------------- *)

let cmd_answers () path query_pred =
  let program, db = load_file path in
  let q = P.Explain.query program query_pred in
  let answers = P.Explain.answers q db in
  List.iter (fun f -> print_endline (D.Fact.to_string f)) answers;
  Printf.printf "%% %d answer(s)\n" (List.length answers)

(* A goal that is not in the materialized model has an empty
   why-provenance by definition; treat it as a user error (mistyped
   tuple, wrong predicate) with a clear message and a non-zero exit
   rather than silently printing nothing. *)
let check_derivable closure fact =
  if not (P.Closure.derivable closure) then begin
    Format.eprintf
      "whyprov: %a is not derivable (not in the materialized model)@."
      D.Fact.pp fact;
    exit 1
  end

let cmd_explain () path query_pred tuple limit use_tc smallest witness
    no_preprocess minimize plan slice enum cube_vars jobs =
  let program, db = load_checked ~query:query_pred path in
  let program, db, stats = prepare ~plan ~slice query_pred program db in
  let q = P.Explain.query program query_pred in
  let fact = P.Explain.goal q (parse_tuple tuple) in
  let closure = P.Closure.build ?stats program db fact in
  check_derivable closure fact;
  let preprocess = not no_preprocess in
  let par_mode =
    match enum with
    | `Seq -> None
    | `Cube -> Some P.Enumerate.Par.Cube
    | `Portfolio -> Some P.Enumerate.Par.Portfolio
  in
  (match par_mode with
  | None -> ()
  | Some _ ->
    let reject opt =
      Format.eprintf "whyprov: %s requires --enum=seq@." opt;
      exit 1
    in
    if witness then reject "--witness";
    if smallest then reject "--smallest";
    if minimize then reject "--minimize-blocking");
  match par_mode with
  | Some mode ->
    let par =
      P.Enumerate.Par.of_closure ~preprocess ~mode ~cube_vars ~jobs closure
    in
    let members = P.Enumerate.Par.to_list ~limit par in
    List.iteri
      (fun i m -> Format.printf "%2d. %a@." (i + 1) D.Fact.pp_set m)
      members
  | None ->
  if witness then begin
    let enumeration =
      P.Enumerate.of_closure ~preprocess ~minimize_blocking:minimize closure
    in
    let rec loop i =
      if i <= limit then
        match P.Enumerate.next_with_witness enumeration with
        | None -> ()
        | Some (member, dag) ->
          Format.printf "%2d. %a@." i D.Fact.pp_set member;
          Format.printf "%a@.@." P.Proof_tree.pp (P.Proof_dag.unravel dag);
          loop (i + 1)
    in
    loop 1
  end
  else if use_tc || smallest || no_preprocess || minimize then begin
    (* No flag: leave the acyclicity choice to the analyzer. The
       preprocessing/minimization toggles force the SAT enumeration
       path (the default path may answer via the closed-form
       explanation, where those knobs have no meaning). *)
    let acyclicity = if use_tc then Some P.Encode.Transitive_closure else None in
    let enumeration =
      P.Enumerate.of_closure ?acyclicity ~smallest_first:smallest ~preprocess
        ~minimize_blocking:minimize closure
    in
    let members = P.Enumerate.to_list ~limit enumeration in
    List.iteri
      (fun i m -> Format.printf "%2d. %a@." (i + 1) D.Fact.pp_set m)
      members
  end
  else begin
    let explanation = P.Explain.explain_of_closure ~limit closure in
    Format.printf "%a@." P.Explain.pp_explanation explanation
  end

let cmd_batch () path query_pred tuples all jobs limit budget no_preprocess
    minimize plan slice enum cube_vars =
  let program, db = load_checked ~query:query_pred path in
  let program, db, stats = prepare ~plan ~slice query_pred program db in
  let q = P.Explain.query program query_pred in
  let explicit = tuples <> [] && not all in
  let spec =
    if explicit then
      P.Batch.Facts (List.map (fun t -> P.Explain.goal q (parse_tuple t)) tuples)
    else P.Batch.All_answers q.P.Explain.answer_pred
  in
  let conflict_budget = if budget > 0 then Some budget else None in
  let enum_mode =
    match enum with
    | `Seq -> None
    | `Cube -> Some P.Enumerate.Par.Cube
    | `Portfolio -> Some P.Enumerate.Par.Portfolio
  in
  if enum_mode <> None && minimize then begin
    Format.eprintf "whyprov: --minimize-blocking requires --enum=seq@.";
    exit 1
  end;
  let outcome =
    P.Batch.run ~jobs ~limit ?conflict_budget ~preprocess:(not no_preprocess)
      ~minimize_blocking:minimize ?enum_mode ~cube_vars ?stats program db spec
  in
  (* Stdout is tuple-ordered and independent of --jobs: the paired
     smoke tests diff a --jobs 1 run against a --jobs 2 run. *)
  let total_members = ref 0 in
  List.iter
    (fun (r : P.Batch.result) ->
      total_members := !total_members + List.length r.P.Batch.members;
      (match r.P.Batch.status with
      | P.Batch.Complete ->
        Format.printf "%a: %d member(s)@." D.Fact.pp r.P.Batch.fact
          (List.length r.P.Batch.members)
      | P.Batch.Limit_reached ->
        Format.printf "%a: at least %d members (limit)@." D.Fact.pp
          r.P.Batch.fact
          (List.length r.P.Batch.members)
      | P.Batch.Budget_exhausted ->
        Format.printf "%a: at least %d members (budget exhausted)@." D.Fact.pp
          r.P.Batch.fact
          (List.length r.P.Batch.members)
      | P.Batch.Too_large ->
        Format.printf "%a: encoding too large@." D.Fact.pp r.P.Batch.fact
      | P.Batch.Not_derivable ->
        Format.printf "%a: not derivable@." D.Fact.pp r.P.Batch.fact);
      List.iteri
        (fun i m -> Format.printf "  %2d. %a@." (i + 1) D.Fact.pp_set m)
        r.P.Batch.members)
    outcome.P.Batch.results;
  Format.printf "%% %d tuple(s), %d member(s), closure cache %d/%d hits@."
    (List.length outcome.P.Batch.results)
    !total_members outcome.P.Batch.cache_hits
    (outcome.P.Batch.cache_hits + outcome.P.Batch.cache_misses);
  if explicit then begin
    let missing =
      List.filter
        (fun (r : P.Batch.result) -> r.P.Batch.status = P.Batch.Not_derivable)
        outcome.P.Batch.results
    in
    match missing with
    | [] -> ()
    | _ ->
      List.iter
        (fun (r : P.Batch.result) ->
          Format.eprintf
            "whyprov: %a is not derivable (not in the materialized model)@."
            D.Fact.pp r.P.Batch.fact)
        missing;
      exit 1
  end

(* The rule-level profiler: whyprov profile FILE [-q PRED] [--plan=MODE]
   [--jobs N]. Materializes the model once with profiling enabled and
   prints per-rule / per-atom / per-SCC attribution plus the
   estimate-vs-actual plan audit (estimates from the
   abstract-interpretation layer, actuals from the profile and the
   materialized model). Human output is the SCC → rule → atom tree;
   --format=json emits the whyprov.profile/1 document with an "audit"
   member. --no-times drops the (nondeterministic) wall-time fields, so
   two runs of the same instance are byte-identical whatever --jobs. *)
let cmd_profile () path query jobs plan format top no_times out =
  let program, db = load_checked ?query path in
  let analysis = A.Absint.analyze program db in
  let est = A.Absint.stats analysis in
  let stats = if plan = `Cost then Some est else None in
  D.Profile.reset ();
  D.Profile.set_enabled true;
  let model = D.Eval.seminaive ~jobs ?stats program db in
  D.Profile.set_enabled false;
  let prof = D.Profile.snapshot () in
  let actual = D.Stats.of_database model in
  let audit = D.Profile.audit ~est ~actual program prof in
  match format with
  | `Human ->
    Format.printf "%a" (D.Profile.pp ~top) prof;
    Format.printf "%a" D.Profile.pp_audit audit
  | `Json -> (
    let doc =
      match D.Profile.to_json ~times:(not no_times) prof with
      | Metrics.Json.Obj fields ->
        Metrics.Json.Obj
          (fields @ [ ("audit", D.Profile.audit_to_json audit) ])
      | other -> other
    in
    let line = Metrics.Json.to_string doc in
    match out with
    | None -> print_endline line
    | Some file ->
      let oc = open_out file in
      output_string oc line;
      output_char oc '\n';
      close_out oc)

(* The static analyzer: whyprov check FILE [-q PRED]. Exit status is the
   contract (docs/ANALYSIS.md): 0 clean or warnings only, 1 on errors or
   (with --deny-warnings) warnings. *)
let cmd_analyze () path query format deny_warnings =
  let result = A.Check.check_file ?query path in
  (match format with
  | `Human -> Format.printf "%a" A.Check.pp_human result
  | `Json ->
    print_endline (Metrics.Json.to_string (A.Check.to_json ~file:path result)));
  let failed =
    result.A.Check.errors > 0
    || (deny_warnings && result.A.Check.warnings > 0)
  in
  exit (if failed then 1 else 0)

(* The abstract-interpretation report: whyprov analyze FILE [-q PRED]
   [--plans]. Everything printed is deterministic (schema order, sorted
   adornments), so the CLI smoke tests diff it against a golden file. *)
let cmd_absint_report () path query plans format =
  let program, db = load_checked ?query path in
  let analysis = A.Absint.analyze program db in
  match format with
  | `Json ->
    print_endline
      (Metrics.Json.to_string
         (A.Absint.to_json
            ?query:(Option.map D.Symbol.intern query)
            analysis))
  | `Human ->
  Format.printf "%a@." A.Absint.pp analysis;
  (match query with
  | None -> ()
  | Some qp ->
    let qsym = D.Symbol.intern qp in
    (match A.Absint.adornments analysis ~query:qsym with
    | [] -> ()
    | ads ->
      Format.printf "adornments (query %s, all arguments bound):@." qp;
      List.iter
        (fun (p, ad) -> Format.printf "  %s^%s@." (D.Symbol.name p) ad)
        ads);
    Format.printf "%a@." A.Absint.pp_slice (A.Absint.slice analysis ~query:qsym));
  if plans then begin
    let stats = A.Absint.stats analysis in
    Format.printf "join plans (full-evaluation tasks, heuristic vs cost):@.";
    List.iter
      (fun r ->
        Format.printf "rule %d: %a@." r.D.Rule.id D.Rule.pp r;
        Format.printf "  heuristic: %a@." D.Plan.pp
          (D.Plan.compile program r ~delta:(-1));
        Format.printf "  cost:      %a@." D.Plan.pp
          (D.Plan.compile ~stats program r ~delta:(-1)))
      (D.Program.rules program)
  end

let cmd_member () path query_pred tuple subset variant =
  let program, db = load_file path in
  let q = P.Explain.query program query_pred in
  let fact = P.Explain.goal q (parse_tuple tuple) in
  let candidate = parse_subset subset in
  let variant =
    match variant with
    | "any" -> `Any
    | "un" -> `Unambiguous
    | "nr" -> `Non_recursive
    | "md" -> `Minimal_depth
    | other -> failwith (Printf.sprintf "unknown variant %S (any|un|nr|md)" other)
  in
  let is_member = P.Explain.why_provenance ~variant q db fact candidate in
  print_endline (if is_member then "MEMBER" else "NOT A MEMBER");
  exit (if is_member then 0 else 1)

let cmd_tree () path query_pred tuple dot =
  let program, db = load_file path in
  let q = P.Explain.query program query_pred in
  let fact = P.Explain.goal q (parse_tuple tuple) in
  match P.Explain.proof_tree q db fact with
  | None ->
    prerr_endline "not derivable";
    exit 1
  | Some tree ->
    if dot then print_string (P.Proof_tree.to_dot tree)
    else Format.printf "%a@." P.Proof_tree.pp tree

let cmd_stats () path query_pred tuple =
  let program, db = load_file path in
  let q = P.Explain.query program query_pred in
  let fact = P.Explain.goal q (parse_tuple tuple) in
  let closure = P.Closure.build program db fact in
  Format.printf "%a@." P.Closure.pp_stats closure;
  let encoding = P.Encode.make closure in
  let st = P.Encode.stats encoding in
  Printf.printf
    "formula: %d variables, %d clauses, %d edges, elimination width %d, %d fill edges\n"
    st.P.Encode.variables st.P.Encode.clauses st.P.Encode.edges
    st.P.Encode.elimination_width st.P.Encode.fill_edges;
  Printf.printf "query class: %s\n" (D.Program.query_class program)

let cmd_repl () path =
  let program, db = load_file path in
  Format.printf "whyprov repl — %d rules, %d facts. Type 'help' for commands.@."
    (List.length (D.Program.rules program))
    (D.Database.size db);
  let model = lazy (D.Eval.seminaive program db) in
  let help () =
    print_string
      "  p(a,b).        explain the ground fact p(a,b)\n\
      \  p(a,X).        list matching answers (magic-sets evaluation)\n\
      \  tree p(a,b).   print one minimal-depth proof tree\n\
      \  count p(a,b).  size of why_UN (up to 10000)\n\
      \  stats          model statistics\n\
      \  help | quit\n"
  in
  let handle_atom ?(mode = `Explain) (atom : D.Atom.t) =
    if D.Atom.is_ground atom then begin
      let fact = D.Atom.to_fact atom in
      if not (D.Database.mem (Lazy.force model) fact) then
        Format.printf "not derivable.@."
      else
        match mode with
        | `Tree -> (
          let trace = P.Trace.record program db in
          match P.Trace.proof_tree trace fact with
          | Some tree -> Format.printf "%a@." P.Proof_tree.pp tree
          | None -> Format.printf "not derivable.@.")
        | `Count ->
          let e = P.Enumerate.create program db fact in
          let n = List.length (P.Enumerate.to_list ~limit:10_000 e) in
          Format.printf "%d member(s)%s@." n (if n = 10_000 then " (capped)" else "")
        | `Explain ->
          let e = P.Enumerate.create program db fact in
          List.iteri
            (fun i m -> Format.printf "%2d. %a@." (i + 1) D.Fact.pp_set m)
            (P.Enumerate.to_list ~limit:20 e)
    end
    else if D.Program.is_idb program atom.D.Atom.pred then begin
      let magic = D.Magic.transform program atom in
      let answers = D.Magic.answers magic db in
      List.iter (fun f -> Format.printf "%a@." D.Fact.pp f) answers;
      Format.printf "%% %d answer(s)@." (List.length answers)
    end
    else begin
      (* Extensional pattern: scan the database. *)
      let count = ref 0 in
      D.Database.iter_pred db atom.D.Atom.pred (fun f ->
          let matches =
            Array.for_all2
              (fun t c ->
                match t with D.Term.Const c' -> D.Symbol.equal c c' | D.Term.Var _ -> true)
              atom.D.Atom.args (D.Fact.args f)
          in
          if matches then begin
            incr count;
            Format.printf "%a@." D.Fact.pp f
          end);
      Format.printf "%% %d fact(s)@." !count
    end
  in
  let rec loop () =
    print_string "whyprov> ";
    match read_line () with
    | exception End_of_file -> ()
    | "quit" | "exit" -> ()
    | "help" -> help (); loop ()
    | "stats" ->
      let m = Lazy.force model in
      Format.printf "model: %d facts over %d predicates@." (D.Database.size m)
        (List.length (D.Database.preds m));
      List.iter
        (fun p ->
          Format.printf "  %a: %d@." D.Symbol.pp p (D.Database.count_pred m p))
        (D.Database.preds m);
      loop ()
    | "" -> loop ()
    | line -> (
      let mode, body =
        if String.length line > 5 && String.sub line 0 5 = "tree " then
          (`Tree, String.sub line 5 (String.length line - 5))
        else if String.length line > 6 && String.sub line 0 6 = "count " then
          (`Count, String.sub line 6 (String.length line - 6))
        else (`Explain, line)
      in
      let body = String.trim body in
      let body = if String.length body > 0 && body.[String.length body - 1] = '.' then body else body ^ "." in
      (match D.Parser.parse_string ("dummy :- " ^ body) with
      | [ D.Parser.Clause_rule rule ] -> (
        match D.Rule.body rule with
        | [ atom ] -> (try handle_atom ~mode atom with
          | Invalid_argument msg | Failure msg -> Format.printf "error: %s@." msg)
        | _ -> Format.printf "error: enter a single atom@.")
      | _ | (exception D.Parser.Error _) ->
        (match D.Parser.parse_string body with
        | [ D.Parser.Clause_fact f ] ->
          (try handle_atom ~mode (D.Atom.of_fact f) with
           | Invalid_argument msg | Failure msg -> Format.printf "error: %s@." msg)
        | _ -> Format.printf "error: could not parse %S@." body
        | exception D.Parser.Error (pos, msg) ->
          Format.printf "parse error: %s@." (D.Parser.error_message pos msg)));
      loop ())
  in
  loop ()

(* --- Cmdliner glue ----------------------------------------------------- *)

open Cmdliner

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Datalog program + facts file.")

let query_arg =
  Arg.(required & opt (some string) None & info [ "q"; "query" ] ~docv:"PRED" ~doc:"Answer predicate.")

let tuple_arg =
  Arg.(required & opt (some string) None & info [ "t"; "tuple" ] ~docv:"C1,C2,…" ~doc:"Answer tuple (comma-separated constants).")

let limit_arg =
  Arg.(value & opt int 100 & info [ "limit" ] ~docv:"N" ~doc:"Maximum number of members to enumerate.")

let tc_arg =
  Arg.(value & flag & info [ "tc-acyclicity" ] ~doc:"Use the transitive-closure acyclicity encoding instead of vertex elimination.")

let smallest_arg =
  Arg.(value & flag & info [ "smallest" ] ~doc:"Enumerate members in order of non-decreasing size (totalizer encoding).")

let witness_arg =
  Arg.(value & flag & info [ "witness" ] ~doc:"Print an unambiguous proof tree witnessing each member.")

let no_preprocess_arg =
  Arg.(
    value
    & flag
    & info [ "no-preprocess" ]
        ~doc:
          "Load the raw CNF formula instead of simplifying it first \
           (SatELite-style variable elimination, subsumption and probing). \
           The enumerated member set is identical either way.")

let minimize_arg =
  Arg.(
    value
    & flag
    & info [ "minimize-blocking" ]
        ~doc:
          "Shrink each member's blocking clause by assumption-based core \
           reduction before adding it (bounded side-solves; identical member \
           set, shorter clauses).")

let tuples_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "t"; "tuple" ] ~docv:"C1,C2,…"
        ~doc:"Answer tuple (comma-separated constants); repeatable.")

let all_arg =
  Arg.(
    value
    & flag
    & info [ "all" ]
        ~doc:"Enumerate every answer of the query predicate (default when no \
              $(b,--tuple) is given).")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains for the encode/enumerate fan-out (default 1: \
              run sequentially on the calling domain).")

let budget_arg =
  Arg.(
    value
    & opt int 0
    & info [ "budget" ] ~docv:"N"
        ~doc:"Per-tuple solver conflict budget; 0 (default) means \
              unbounded solving.")

let enum_arg =
  let modes =
    Arg.enum [ ("seq", `Seq); ("cube", `Cube); ("portfolio", `Portfolio) ]
  in
  Arg.(
    value
    & opt modes `Seq
    & info [ "enum" ] ~docv:"MODE"
        ~doc:
          "Enumeration mode: $(b,seq) (default; one solver per tuple), \
           $(b,cube) (cube-and-conquer: split the search over 2^K cubes \
           of high-activity db-fact selectors, members streamed through \
           a deduplicating coordinator) or $(b,portfolio) (race a panel \
           of solver configurations per member). The member $(i,set) is \
           identical in every mode; cube/portfolio output is \
           order-normalized.")

let cube_vars_arg =
  Arg.(
    value
    & opt int 2
    & info [ "cube-vars" ] ~docv:"K"
        ~doc:
          "Selector variables per cube split for $(b,--enum=cube): 2^K \
           sub-enumerations (default 2, clamped to 6).")

let subset_arg =
  Arg.(required & opt (some string) None & info [ "s"; "subset" ] ~docv:"FACTS" ~doc:"Candidate subset, as 'f(a). g(b).'.")

let opt_query_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "q"; "query" ] ~docv:"PRED"
        ~doc:
          "Answer predicate; enables the reachability and derivability \
           checks (WP101/WP102/WP103) relative to it.")

let format_arg =
  let fmt = Arg.enum [ ("human", `Human); ("json", `Json) ] in
  Arg.(
    value
    & opt fmt `Human
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:
          "Report format: $(b,human) (one gcc-style line per diagnostic) or \
           $(b,json) (the whyprov.check/1 document of docs/ANALYSIS.md).")

let deny_warnings_arg =
  Arg.(
    value
    & flag
    & info [ "deny-warnings" ]
        ~doc:"Exit 1 when any warning is reported (CI gate).")

let plan_arg =
  let modes = Arg.enum [ ("heuristic", `Heuristic); ("cost", `Cost) ] in
  Arg.(
    value
    & opt modes `Heuristic
    & info [ "plan" ] ~docv:"MODE"
        ~doc:
          "Join-order mode for the fixpoint: $(b,heuristic) (default; \
           bound-prefix scoring) or $(b,cost) (cardinality estimates from \
           the abstract-interpretation layer, docs/ABSINT.md). The model, \
           the answers and every why-provenance set are identical in \
           either mode.")

let slice_arg =
  Arg.(
    value
    & flag
    & info [ "slice" ]
        ~doc:
          "Drop rules and extensional predicates that provably cannot \
           contribute to the query before evaluating (query-relevance \
           slice, docs/ABSINT.md; report on stderr). Answers, members \
           and ranks are unchanged.")

let plans_arg =
  Arg.(
    value
    & flag
    & info [ "plans" ]
        ~doc:
          "Also print each rule's compiled join order in both plan modes.")

let variant_arg =
  Arg.(value & opt string "any" & info [ "variant" ] ~docv:"V" ~doc:"Proof-tree class: any, un, nr or md.")

let dot_arg = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz.")

let stats_arg =
  let fmt = Arg.enum [ ("human", `Human); ("json", `Json) ] in
  Arg.(
    value
    & opt ~vopt:(Some `Human) (some fmt) None
    & info [ "stats" ] ~docv:"FORMAT"
        ~doc:
          "Record pipeline metrics (docs/OBSERVABILITY.md) and print a \
           snapshot on exit: $(b,--stats) prints the human-readable listing \
           to stderr, $(b,--stats=json) a one-line JSON snapshot to stdout.")

let stats_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-out" ] ~docv:"FILE"
        ~doc:
          "Record pipeline metrics and write the JSON snapshot to $(docv) on \
           exit (implies metrics recording; combines with $(b,--stats)).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record the structured event timeline (docs/OBSERVABILITY.md) and \
           write it to $(docv) as Chrome trace-event JSON on exit — load in \
           Perfetto or chrome://tracing.")

let trace_jsonl_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-jsonl" ] ~docv:"FILE"
        ~doc:
          "Record the structured event timeline and write it to $(docv) as \
           line-oriented JSON (one event per line) on exit.")

let progress_arg =
  Arg.(
    value
    & opt ~vopt:(Some 2048) (some int) None
    & info [ "progress" ] ~docv:"N"
        ~doc:
          "Print live SAT search telemetry to stderr every $(docv) conflicts \
           (default 2048) plus a one-line summary on exit.")

let profile_opt_arg =
  Arg.(
    value
    & opt ~vopt:(Some "") (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Record the rule-level execution profile (docs/OBSERVABILITY.md) \
           across every fixpoint the command runs: bare $(b,--profile) \
           prints the SCC → rule → atom tree to stderr on exit, \
           $(b,--profile=FILE) writes the whyprov.profile/1 JSON document \
           to $(docv).")

let stats_term =
  Term.(
    const setup_obs $ stats_arg $ stats_out_arg $ trace_arg $ trace_jsonl_arg
    $ progress_arg $ profile_opt_arg)

let answers_cmd =
  Cmd.v (Cmd.info "answers" ~doc:"Evaluate the query and print all answers")
    Term.(const cmd_answers $ stats_term $ file_arg $ query_arg)

let explain_cmd =
  Cmd.v (Cmd.info "explain" ~doc:"Enumerate the why-provenance (unambiguous proof trees) of an answer")
    Term.(const cmd_explain $ stats_term $ file_arg $ query_arg $ tuple_arg $ limit_arg $ tc_arg $ smallest_arg $ witness_arg $ no_preprocess_arg $ minimize_arg $ plan_arg $ slice_arg $ enum_arg $ cube_vars_arg $ jobs_arg)

let batch_cmd =
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Enumerate the why-provenance of many answers off one shared \
          materialization, optionally fanning the per-tuple solver work over \
          several worker domains")
    Term.(
      const cmd_batch $ stats_term $ file_arg $ query_arg $ tuples_arg
      $ all_arg $ jobs_arg $ limit_arg $ budget_arg $ no_preprocess_arg
      $ minimize_arg $ plan_arg $ slice_arg $ enum_arg $ cube_vars_arg)

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically analyze a program: positioned diagnostics (stable WPxxx \
          codes), the program-class report (NRDat/LDat/PwlDat/Dat) and the \
          encoding-selection decision. Exits 1 on errors, or on warnings \
          with --deny-warnings.")
    Term.(
      const cmd_analyze $ stats_term $ file_arg $ opt_query_arg $ format_arg
      $ deny_warnings_arg)

let analyze_format_arg =
  let fmt = Arg.enum [ ("human", `Human); ("json", `Json) ] in
  Arg.(
    value
    & opt fmt `Human
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:
          "Report format: $(b,human) (the deterministic listing) or \
           $(b,json) (the whyprov.analyze/1 document of docs/ANALYSIS.md). \
           $(b,--plans) applies to the human report only.")

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the abstract-interpretation layer (docs/ABSINT.md) and print \
          its report: per-argument constant values, cardinality estimates, \
          provably-empty predicates and, with $(b,-q), adorned binding \
          patterns and the query-relevance slice.")
    Term.(
      const cmd_absint_report $ stats_term $ file_arg $ opt_query_arg
      $ plans_arg $ analyze_format_arg)

let profile_format_arg =
  let fmt = Arg.enum [ ("human", `Human); ("json", `Json) ] in
  Arg.(
    value
    & opt fmt `Human
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:
          "Report format: $(b,human) (hot rules, the SCC → rule → atom tree \
           and the plan audit) or $(b,json) (the whyprov.profile/1 document \
           with an $(b,audit) member, docs/OBSERVABILITY.md).")

let top_arg =
  Arg.(
    value
    & opt int 5
    & info [ "top" ] ~docv:"K"
        ~doc:"Number of hot rules the human report lists (default 5).")

let no_times_arg =
  Arg.(
    value
    & flag
    & info [ "no-times" ]
        ~doc:
          "Omit wall-time fields from the JSON document; everything left is \
           deterministic and independent of $(b,--jobs).")

let profile_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write the JSON document to $(docv) instead of stdout.")

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Materialize the model with the rule-level profiler enabled and \
          print per-rule / per-join-atom / per-SCC attribution (wall time, \
          firings, tuples, duplicates, probes, fan-out, rounds) plus the \
          estimate-vs-actual plan audit: per-predicate and per-join-step \
          q-errors against the abstract-interpretation estimates, and the \
          rules whose mis-estimates would flip the $(b,--plan=cost) join \
          order.")
    Term.(
      const cmd_profile $ stats_term $ file_arg $ opt_query_arg $ jobs_arg
      $ plan_arg $ profile_format_arg $ top_arg $ no_times_arg
      $ profile_out_arg)

let member_cmd =
  Cmd.v (Cmd.info "member" ~doc:"Decide membership of a subset in the why-provenance")
    Term.(const cmd_member $ stats_term $ file_arg $ query_arg $ tuple_arg $ subset_arg $ variant_arg)

let tree_cmd =
  Cmd.v (Cmd.info "tree" ~doc:"Print one (minimal-depth) proof tree of an answer")
    Term.(const cmd_tree $ stats_term $ file_arg $ query_arg $ tuple_arg $ dot_arg)

let repl_cmd =
  Cmd.v (Cmd.info "repl" ~doc:"Interactive query/explain loop over a program file")
    Term.(const cmd_repl $ stats_term $ file_arg)

let stats_cmd =
  Cmd.v (Cmd.info "stats" ~doc:"Print downward-closure and formula statistics")
    Term.(const cmd_stats $ stats_term $ file_arg $ query_arg $ tuple_arg)

let () =
  let doc = "why-provenance for Datalog queries (PODS 2024 reproduction)" in
  let info = Cmd.info "whyprov" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ answers_cmd; explain_cmd; batch_cmd; check_cmd; analyze_cmd; profile_cmd; member_cmd; tree_cmd; stats_cmd; repl_cmd ]))
