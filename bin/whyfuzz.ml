(* whyfuzz — the hardening harness CLI (docs/HARDENING.md).

   Three subcommands over lib/harden:

     whyfuzz corpus DIR   run every .cnf under a timeout, cross-check
                          every answer, across a config matrix
     whyfuzz gen FAMILY   print a structured instance as DIMACS
     whyfuzz fuzz         seeded differential fuzzing with shrinking

   Exit codes: 0 clean, 1 cross-check failures / bugs found / bad
   input, 124 reserved (never used; timeouts are tallied, not fatal). *)

open Cmdliner
module Metrics = Util.Metrics

(* ------------------------------------------------------------------ *)
(* Named solver configurations                                         *)
(* ------------------------------------------------------------------ *)

let named_configs =
  let d = Sat.Solver.default_config in
  [
    ("default", d);
    ("fast-restarts", { d with restart_base = 16; restart_factor = 1.5 });
    ("no-inprocessing", { d with vivify_interval = 0; otf_subsume = false });
    ("tiny-db", { d with max_learnts = 16; max_learnts_growth_pct = 10 });
  ]

let config_of_name name =
  match List.assoc_opt name named_configs with
  | Some c -> Ok c
  | None ->
      Error
        (Printf.sprintf "unknown config %S (known: %s)" name
           (String.concat ", " (List.map fst named_configs)))

(* ------------------------------------------------------------------ *)
(* whyfuzz corpus                                                      *)
(* ------------------------------------------------------------------ *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let cmd_corpus dir timeout configs preprocess timings_out stats_out =
  if stats_out <> None then Metrics.set_enabled true;
  let configs_r =
    List.map (fun n -> (n, config_of_name n)) configs
    |> List.fold_left
         (fun acc (n, r) ->
           match (acc, r) with
           | Error e, _ -> Error e
           | Ok _, Error e -> Error e
           | Ok l, Ok c -> Ok ((n, c) :: l))
         (Ok [])
  in
  match configs_r with
  | Error e ->
      prerr_endline ("whyfuzz: " ^ e);
      1
  | Ok configs_rev -> (
      let configs = List.rev configs_rev in
      let pre_modes =
        match preprocess with
        | `Both -> [ true; false ]
        | `On -> [ true ]
        | `Off -> [ false ]
      in
      try
        let reports =
          List.concat_map
            (fun (name, config) ->
              List.map
                (fun pre ->
                  let opts =
                    {
                      Harden.Corpus.default_opts with
                      config_name =
                        Printf.sprintf "%s/%s" name
                          (if pre then "pre" else "raw");
                      config;
                      preprocess = pre;
                      timeout_s = timeout;
                    }
                  in
                  let report = Harden.Corpus.run_dir opts dir in
                  Format.printf "%a@." Harden.Corpus.pp_summary report;
                  report)
                pre_modes)
            configs
        in
        (match timings_out with
        | None -> ()
        | Some path ->
            write_file path
              (String.concat "" (List.map Harden.Corpus.timings reports)));
        (match stats_out with
        | None -> ()
        | Some path -> write_file path (Metrics.to_json_string ()));
        let failures =
          List.fold_left (fun n r -> n + r.Harden.Corpus.failures) 0 reports
        in
        if failures > 0 then (
          Printf.eprintf "whyfuzz: %d cross-check failure(s)\n" failures;
          1)
        else 0
      with
      | Invalid_argument msg | Sys_error msg ->
          prerr_endline ("whyfuzz: " ^ msg);
          1)

(* ------------------------------------------------------------------ *)
(* whyfuzz gen                                                         *)
(* ------------------------------------------------------------------ *)

let cmd_gen family out seed nvars ratio k pigeons holes length sat width
    height colors box givens conflict =
  let param_line = ref "" in
  let instance =
    match family with
    | "php" ->
        param_line := Printf.sprintf "gen php --pigeons %d --holes %d" pigeons holes;
        Ok (Harden.Gen.pigeonhole ~pigeons ~holes)
    | "random" ->
        param_line :=
          Printf.sprintf "gen random --seed %d --nvars %d --ratio %g --k %d"
            seed nvars ratio k;
        Ok (Harden.Gen.random_kcnf ~k (Util.Rng.create seed) ~nvars ~ratio)
    | "xorchain" ->
        param_line :=
          Printf.sprintf "gen xorchain --length %d %s" length
            (if sat then "--sat" else "--unsat");
        Ok (Harden.Gen.xor_chain ~length ~sat)
    | "grid" ->
        param_line :=
          Printf.sprintf "gen grid --width %d --height %d --colors %d" width
            height colors;
        Ok (Harden.Gen.grid_coloring ~width ~height ~colors)
    | "unit-conflict" ->
        param_line := "gen unit-conflict";
        Ok (Harden.Gen.unit_conflict ())
    | "sudoku" ->
        param_line :=
          Printf.sprintf "gen sudoku --seed %d --box %d --givens %d%s" seed box
            givens
            (if conflict then " --conflict" else "");
        Ok
          (Harden.Gen.sudoku ~givens ~conflict (Util.Rng.create seed) ~box)
    | f ->
        Error
          (Printf.sprintf
             "unknown family %S (known: php, random, xorchain, grid, \
              unit-conflict, sudoku)"
             f)
  in
  match instance with
  | Error e ->
      prerr_endline ("whyfuzz: " ^ e);
      1
  | Ok cnf ->
      let text =
        Harden.Gen.to_dimacs ~comments:[ "whyfuzz " ^ !param_line ] cnf
      in
      (match out with
      | None -> print_string text
      | Some path -> write_file path text);
      0

(* ------------------------------------------------------------------ *)
(* whyfuzz fuzz                                                        *)
(* ------------------------------------------------------------------ *)

let cmd_fuzz mode seed iters out quiet =
  let progress =
    if quiet then fun _ -> ()
    else fun i ->
      if i > 0 && i mod 10 = 0 then Printf.eprintf "whyfuzz: iteration %d/%d\n%!" i iters
  in
  let summary = Harden.Fuzz.run ~mode ~progress ~seed ~iters () in
  Format.printf "%a@." Harden.Fuzz.pp_summary summary;
  let bugs = summary.Harden.Fuzz.s_bugs in
  if bugs <> [] then begin
    let dir = Option.value out ~default:"." in
    let paths = Harden.Fuzz.write_reproducers ~dir summary in
    List.iter (fun p -> Printf.eprintf "whyfuzz: reproducer %s\n" p) paths;
    1
  end
  else 0

(* ------------------------------------------------------------------ *)
(* Terms                                                               *)
(* ------------------------------------------------------------------ *)

let dir_arg =
  Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR" ~doc:"Corpus directory of .cnf files.")

let timeout_arg =
  Arg.(value & opt float 5.0 & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Wall-clock budget per instance.")

let configs_arg =
  Arg.(
    value
    & opt (list string) [ "default"; "fast-restarts"; "no-inprocessing" ]
    & info [ "configs" ] ~docv:"NAMES"
        ~doc:
          "Comma-separated solver configurations to run (default, \
           fast-restarts, no-inprocessing, tiny-db).")

let preprocess_arg =
  Arg.(
    value
    & opt (enum [ ("both", `Both); ("on", `On); ("off", `Off) ]) `Both
    & info [ "preprocess" ] ~docv:"MODE"
        ~doc:"Run with preprocessing $(b,on), $(b,off), or $(b,both) (default).")

let timings_arg =
  Arg.(value & opt (some string) None & info [ "timings" ] ~docv:"FILE" ~doc:"Write sorted per-instance timing lines to $(docv).")

let stats_out_arg =
  Arg.(value & opt (some string) None & info [ "stats-out" ] ~docv:"FILE" ~doc:"Write a JSON metrics snapshot to $(docv).")

let corpus_cmd =
  Cmd.v
    (Cmd.info "corpus"
       ~doc:
         "Run every .cnf in a directory under a timeout across a \
          configuration matrix, cross-checking every answer (models \
          evaluated, UNSATs DRAT-certified). Exits 1 on any cross-check \
          failure.")
    Term.(
      const cmd_corpus $ dir_arg $ timeout_arg $ configs_arg $ preprocess_arg
      $ timings_arg $ stats_out_arg)

let family_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FAMILY"
        ~doc:
          "Instance family: php, random, xorchain, grid, unit-conflict, \
           sudoku.")

let out_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write DIMACS to $(docv) instead of stdout.")

let seed_arg ~default =
  Arg.(value & opt int default & info [ "seed" ] ~docv:"N" ~doc:"Deterministic generator seed.")

let gen_cmd =
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Generate a structured CNF instance (Tseytin xor-chain, \
          pigeonhole, random k-CNF, grid coloring, unit conflict) as \
          DIMACS with its parameters recorded in the header.")
    Term.(
      const cmd_gen $ family_arg $ out_arg $ seed_arg ~default:0
      $ Arg.(value & opt int 20 & info [ "nvars" ] ~docv:"N" ~doc:"Variables (random family).")
      $ Arg.(value & opt float 4.26 & info [ "ratio" ] ~docv:"R" ~doc:"Clause/variable ratio (random family).")
      $ Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc:"Literals per clause (random family).")
      $ Arg.(value & opt int 5 & info [ "pigeons" ] ~docv:"P" ~doc:"Pigeons (php family).")
      $ Arg.(value & opt int 4 & info [ "holes" ] ~docv:"H" ~doc:"Holes (php family).")
      $ Arg.(value & opt int 16 & info [ "length" ] ~docv:"N" ~doc:"Inputs (xorchain family).")
      $ Arg.(value & flag & info [ "sat" ] ~doc:"Pin xorchain inputs to odd parity (satisfiable); default unsatisfiable.")
      $ Arg.(value & opt int 3 & info [ "width" ] ~docv:"W" ~doc:"Grid width (grid family).")
      $ Arg.(value & opt int 3 & info [ "height" ] ~docv:"H" ~doc:"Grid height (grid family).")
      $ Arg.(value & opt int 2 & info [ "colors" ] ~docv:"C" ~doc:"Colors (grid family).")
      $ Arg.(value & opt int 2 & info [ "box" ] ~docv:"N" ~doc:"Box size (sudoku family): the grid is N²×N².")
      $ Arg.(value & opt int 0 & info [ "givens" ] ~docv:"G" ~doc:"Cells pinned to a fixed valid solution (sudoku family).")
      $ Arg.(value & flag & info [ "conflict" ] ~doc:"Pin cell (0,0) to two values — unsatisfiable (sudoku family)."))

let fuzz_mode_arg =
  Arg.(
    value
    & pos 0 (enum [ ("all", `All); ("par-enum", `Par_enum) ]) `All
    & info [] ~docv:"MODE"
        ~doc:
          "Differentials to run: $(b,all) (default), or $(b,par-enum) to \
           focus on the parallel enumerators vs the powerset oracle. The \
           random streams are drawn identically either way, so a (seed, \
           iter) reproducer transfers between modes.")

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Seeded differential fuzzing: random CNFs across solver \
          configurations vs the truth-table oracle, random Datalog \
          programs across engines and against the powerset provenance \
          oracle, and the parallel why-set enumerators (cube-and-conquer \
          and portfolio) against the same oracle. Disagreements are \
          shrunk and written as reproducer files; exits 1 if any were \
          found.")
    Term.(
      const cmd_fuzz $ fuzz_mode_arg $ seed_arg ~default:42
      $ Arg.(value & opt int 100 & info [ "iters" ] ~docv:"N" ~doc:"Fuzzing iterations.")
      $ Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc:"Directory for reproducer files (default: current directory).")
      $ Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress progress lines."))

let () =
  let doc = "hardening harness: corpus runs, instance generation, fuzzing" in
  let info = Cmd.info "whyfuzz" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ corpus_cmd; gen_cmd; fuzz_cmd ]))
