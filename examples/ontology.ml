(* Explaining ontology subsumptions (Galen-style EL reasoning).

   A small medical ontology in the EL fragment: class hierarchy,
   conjunctions and existential restrictions. The EL completion rules
   derive subClassOf facts; the why-provenance answers "which axioms
   caused this subsumption?" — the classical axiom-pinpointing problem.

   Run with: dune exec examples/ontology.exe *)

module D = Datalog
module P = Provenance

let source = {|
  % EL completion rules (ELK-style)
  sco(X,X) :- class(X).
  sco(X,Y) :- isa(X,Y).
  sco(X,Z) :- sco(X,Y), isa(Y,Z).
  sco(X,Y) :- sco(X,C), conj(C,Y,Z).
  sco(X,Z) :- sco(X,C), conj(C,Y,Z).
  sco(X,C) :- sco(X,Y), sco(X,Z), conj(C,Y,Z).
  sr(X,R,Y) :- sco(X,E), exists(E,R,Y).
  sco(X,E) :- sr(X,R,Y), sco(Y,Z), exists(E,R,Z).

  % Ontology: a tiny slice of a medical terminology.
  class(appendicitis). class(inflammation). class(disease).
  class(appendix). class(bodypart). class(severe_inflammation).
  class(inflammatory_disease).

  % appendicitis ⊑ inflammation_of_appendix-ish axioms:
  isa(appendicitis, severe_inflammation).
  isa(severe_inflammation, inflammation).
  isa(inflammation, disease).
  isa(appendix, bodypart).

  % inflammatory_disease ≡ inflammation ⊓ disease
  conj(inflammatory_disease, inflammation, disease).

  % located ∃: appendicitis ⊑ ∃locatedIn.appendix, and
  % has_location = ∃locatedIn.bodypart
  exists(loc_appendix, locatedin, appendix).
  exists(has_location, locatedin, bodypart).
  isa(appendicitis, loc_appendix).
|}

let () =
  let program, facts = D.Parser.program_of_string source in
  let db = D.Database.of_list facts in
  let q = P.Explain.query program "sco" in

  (* All derived subsumptions of appendicitis. *)
  Format.printf "Derived super-classes of appendicitis:@.";
  List.iter
    (fun f ->
      match D.Fact.args f with
      | [| x; _ |] when D.Symbol.name x = "appendicitis" ->
        Format.printf "  %a@." D.Fact.pp f
      | _ -> ())
    (P.Explain.answers q db);

  (* Why is appendicitis an inflammatory disease? The explanation must
     combine the chain to inflammation, the chain to disease, and the
     conjunction axiom. *)
  let goal = P.Explain.goal q [ "appendicitis"; "inflammatory_disease" ] in
  Format.printf "@.Why sco(appendicitis, inflammatory_disease)?@.";
  Format.printf "%a@." P.Explain.pp_explanation (P.Explain.explain q db goal);

  (* Why does appendicitis have a location? Uses the existential rules. *)
  let goal2 = P.Explain.goal q [ "appendicitis"; "has_location" ] in
  Format.printf "@.Why sco(appendicitis, has_location)?@.";
  Format.printf "%a@." P.Explain.pp_explanation (P.Explain.explain q db goal2);
  (match P.Explain.proof_tree q db goal2 with
  | Some tree -> Format.printf "@.Proof tree:@.%a@." P.Proof_tree.pp tree
  | None -> assert false);

  (* Membership check: is the conjunction axiom really needed? A
     candidate without it is not a member. *)
  let full_explanation =
    List.hd (P.Explain.explain q db goal).P.Explain.members
  in
  let conj_axiom =
    D.Fact.of_strings "conj" [ "inflammatory_disease"; "inflammation"; "disease" ]
  in
  let without = D.Fact.Set.remove conj_axiom full_explanation in
  Format.printf "@.explanation without the conjunction axiom still valid? %b@."
    (P.Explain.why_provenance ~variant:`Unambiguous q db goal without)
