(* Semiring provenance on the running example: one fixpoint engine, four
   algebras — derivability, number of derivations, cheapest derivation,
   and the why-provenance itself (the witness semiring).

   Run with: dune exec examples/semirings.exe *)

module D = Datalog
module P = Provenance

let source = {|
  % weighted reachability
  tc(X,Y) :- edge(X,Y).
  tc(X,Z) :- tc(X,Y), edge(Y,Z).

  edge(a,b). edge(b,c). edge(a,c). edge(c,d). edge(b,d).
|}

module Bool_eval = P.Semiring.Eval (P.Semiring.Boolean)
module Count_eval = P.Semiring.Eval (P.Semiring.Counting)
module Trop_eval = P.Semiring.Eval (P.Semiring.Tropical)
module Witness_eval = P.Semiring.Eval (P.Semiring.Witness)

let () =
  let program, facts = D.Parser.program_of_string source in
  let db = D.Database.of_list facts in
  let goal = D.Fact.of_strings "tc" [ "a"; "d" ] in
  Format.printf "Fact under scrutiny: %a@.@." D.Fact.pp goal;

  (* Derivability (the Boolean semiring). *)
  Format.printf "derivable?                %b@."
    (Bool_eval.provenance_of program db goal);

  (* How many derivation trees? (Counting semiring; saturates to ∞ for
     recursive derivations.) *)
  Format.printf "derivation trees:         %s@."
    (P.Semiring.Counting.to_string (Count_eval.provenance_of program db goal));

  (* Cheapest derivation when every edge costs 1 (tropical semiring):
     the length of the shortest a→d path. *)
  Format.printf "cheapest derivation:      %g edges@."
    (P.Semiring.Tropical.to_float
       (Trop_eval.provenance_of
          ~annotate:(fun _ -> P.Semiring.Tropical.finite 1.0)
          program db goal));

  (* The why-provenance itself (witness semiring) — and the same family
     through the SAT pipeline, for comparison. *)
  let witness =
    Witness_eval.provenance_of ~annotate:P.Semiring.Witness.of_fact program db goal
  in
  Format.printf "@.why(t,D,Q) via the witness semiring:@.";
  List.iter
    (fun member -> Format.printf "  %a@." D.Fact.pp_set member)
    (P.Semiring.Witness.members witness);

  let q = P.Explain.query program "tc" in
  Format.printf "@.why_UN(t,D,Q) via the SAT pipeline:@.%a@."
    P.Explain.pp_explanation (P.Explain.explain q db goal);

  (* Smallest-first enumeration puts the 2-edge path before the 3-edge
     ones. *)
  let ordered = P.Enumerate.create ~smallest_first:true program db goal in
  Format.printf "smallest explanation first:@.";
  List.iteri
    (fun i member ->
      Format.printf "  %d. (%d facts) %a@." (i + 1)
        (D.Fact.Set.cardinal member) D.Fact.pp_set member)
    (P.Enumerate.to_list ordered)
