(* The NP-hardness reduction made concrete: solving 3SAT by asking a
   why-provenance membership question (Theorem 3 / Lemma 17 of the
   paper), and Hamiltonian cycle through why_NR membership decided by
   the SAT pipeline (Theorem 19 / Lemma 24).

   Run with: dune exec examples/hardness.exe *)

module D = Datalog
module P = Provenance

let pp_clause ppf clause =
  Format.fprintf ppf "(%s)"
    (String.concat " ∨ "
       (List.map
          (fun l ->
            if l > 0 then Printf.sprintf "x%d" l else Printf.sprintf "¬x%d" (-l))
          clause))

let decide_formula ~nvars cnf =
  let instance = P.Reductions.of_3sat ~nvars cnf in
  P.Membership.why instance.P.Reductions.program instance.P.Reductions.database
    instance.P.Reductions.goal instance.P.Reductions.candidate

let () =
  (* A satisfiable formula … *)
  let sat_formula = [ [ 1; 2; 3 ]; [ -1; 2; -3 ]; [ 1; -2; 3 ] ] in
  Format.printf "φ₁ = %a@."
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ∧ ") pp_clause)
    sat_formula;
  Format.printf "  D_φ ∈ why((v1), D_φ, Q)?  %b  (so φ₁ is satisfiable)@.@."
    (decide_formula ~nvars:3 sat_formula);

  (* … and an unsatisfiable one (all eight sign patterns over 3 vars). *)
  let unsat_formula =
    [ [ 1; 2; 3 ]; [ 1; 2; -3 ]; [ 1; -2; 3 ]; [ 1; -2; -3 ];
      [ -1; 2; 3 ]; [ -1; 2; -3 ]; [ -1; -2; 3 ]; [ -1; -2; -3 ] ]
  in
  Format.printf "φ₂ = all eight 3-clauses over x1,x2,x3@.";
  Format.printf "  D_φ ∈ why((v1), D_φ, Q)?  %b  (so φ₂ is unsatisfiable)@.@."
    (decide_formula ~nvars:3 unsat_formula);

  (* The reduction's Datalog query is fixed, linear and recursive: *)
  let instance = P.Reductions.of_3sat ~nvars:3 sat_formula in
  Format.printf "The fixed query of the reduction (%s):@.%a@.@."
    (D.Program.query_class instance.P.Reductions.program)
    D.Program.pp instance.P.Reductions.program;

  (* Hamiltonian cycles via why_NR = why_UN (the query is linear), so
     the Section-5 SAT pipeline decides an NP-hard problem. *)
  let pentagon = [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  let with_chord = (0, 2) :: pentagon in
  List.iter
    (fun (name, nodes, edges) ->
      let instance = P.Reductions.of_ham_cycle ~nodes edges in
      let has_cycle =
        P.Membership.why_un instance.P.Reductions.program
          instance.P.Reductions.database instance.P.Reductions.goal
          instance.P.Reductions.candidate
      in
      let oracle = P.Reductions.ham_cycle_brute_force ~nodes edges in
      Format.printf "%s: Hamiltonian cycle? %b (brute force agrees: %b)@." name
        has_cycle (has_cycle = oracle))
    [
      ("pentagon cycle", 5, pentagon);
      ("pentagon + chord", 5, with_chord);
      ("path (no cycle)", 4, [ (0, 1); (1, 2); (2, 3) ]);
    ]
