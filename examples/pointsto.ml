(* Why does p point to x? — Andersen points-to analysis with
   explanations.

   A small C-like program is encoded as Datalog facts; the analysis
   derives may-point-to pairs; the why-provenance enumerates the
   minimal statement sets responsible for a (possibly surprising)
   points-to fact.

   Run with: dune exec examples/pointsto.exe *)

module D = Datalog
module P = Provenance

(* The program under analysis:

     int x, y;
     int *a = &x;      addr(a,x)
     int *b = &y;      addr(b,y)
     int *p;
     int **pp = &a;    addr(pp,a)
     if (...) p = a;   assign(p,a)
     else     p = b;   assign(p,b)
     int *q = p;       assign(q,p)
     *pp = b;          store(pp,b)
     int *r = *pp;     load(r,pp)
*)
let source = {|
  pt(Y,X) :- addr(Y,X).
  pt(Y,X) :- assign(Y,Z), pt(Z,X).
  pt(Y,W) :- load(Y,X), pt(X,Z), pt(Z,W).
  pt(W,Z) :- store(Y,X), pt(Y,W), pt(X,Z).

  addr(a,x). addr(b,y). addr(pp,a).
  assign(p,a). assign(p,b). assign(q,p).
  store(pp,b). load(r,pp).
|}

let () =
  let program, facts = D.Parser.program_of_string source in
  let db = D.Database.of_list facts in
  let q = P.Explain.query program "pt" in
  Format.printf "May-point-to relation:@.";
  List.iter
    (fun f -> Format.printf "  %a@." D.Fact.pp f)
    (P.Explain.answers q db);

  (* Why may q point to y? (Both the p = b branch and the store
     through pp can be responsible.) *)
  let goal = P.Explain.goal q [ "q"; "y" ] in
  Format.printf "@.Why pt(q,y)?@.";
  let explanation = P.Explain.explain q db goal in
  Format.printf "%a@." P.Explain.pp_explanation explanation;

  (* Each member is a set of statements sufficient on its own: *)
  List.iteri
    (fun i member ->
      let db' = D.Database.of_set member in
      assert (D.Eval.holds program db' goal);
      Format.printf "  explanation %d re-derives pt(q,y) on its own: OK@." (i + 1))
    explanation.P.Explain.members;

  (* Why does r (loaded through pp) point to y? — requires the store. *)
  let goal_r = P.Explain.goal q [ "r"; "y" ] in
  Format.printf "@.Why pt(r,y)?@.";
  Format.printf "%a@." P.Explain.pp_explanation (P.Explain.explain q db goal_r);

  (* A proof tree makes the derivation chain explicit. *)
  (match P.Explain.proof_tree q db goal_r with
  | Some tree -> Format.printf "@.Proof tree:@.%a@." P.Proof_tree.pp tree
  | None -> assert false)
