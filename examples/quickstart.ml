(* Quickstart: the paper's running example (Examples 1–4).

   Builds the path-accessibility program, evaluates it, prints proof
   trees, and contrasts the classical why-provenance with the
   why-provenance relative to unambiguous proof trees.

   Run with: dune exec examples/quickstart.exe *)

module D = Datalog
module P = Provenance

let program_src = {|
  % path accessibility (Cook 1974): s = source nodes,
  % t(y,z,x) = "if y and z are accessible then so is x".
  a(X) :- s(X).
  a(X) :- a(Y), a(Z), t(Y,Z,X).
|}

let () =
  let program, _ = D.Parser.program_of_string program_src in
  Format.printf "Program:@.%a@.@." D.Program.pp program;

  (* The database of Example 1. *)
  let db =
    D.Database.of_list
      [
        D.Fact.of_strings "s" [ "a" ];
        D.Fact.of_strings "t" [ "a"; "a"; "b" ];
        D.Fact.of_strings "t" [ "a"; "a"; "c" ];
        D.Fact.of_strings "t" [ "a"; "a"; "d" ];
        D.Fact.of_strings "t" [ "b"; "c"; "a" ];
      ]
  in
  let q = P.Explain.query program "a" in
  Format.printf "Answers: %a@.@."
    (Format.pp_print_list ~pp_sep:Format.pp_print_space D.Fact.pp)
    (P.Explain.answers q db);

  (* One proof tree of a(d), as in Example 1. *)
  let a_d = P.Explain.goal q [ "d" ] in
  (match P.Explain.proof_tree q db a_d with
  | Some tree ->
    Format.printf "A minimal-depth proof tree of a(d):@.%a@." P.Proof_tree.pp tree
  | None -> assert false);

  (* Example 2: the classical why-provenance of (d) has two members:
     {s(a), t(a,a,d)} and the database itself (via a proof tree that
     derives a(a) from itself). *)
  let family = P.Naive.why program db a_d in
  Format.printf "why((d), D, Q) — arbitrary proof trees:@.";
  List.iteri
    (fun i member -> Format.printf "  %d. %a@." (i + 1) D.Fact.pp_set member)
    family;

  (* Relative to unambiguous proof trees, the counterintuitive member
     disappears. *)
  let explanation = P.Explain.explain q db a_d in
  Format.printf "@.%a@." P.Explain.pp_explanation explanation;

  (* Example 4: a database where an ambiguous (yet non-recursive and
     minimal-depth) proof tree manufactures a spurious explanation. *)
  let db4 =
    D.Database.of_list
      [
        D.Fact.of_strings "s" [ "a" ];
        D.Fact.of_strings "s" [ "b" ];
        D.Fact.of_strings "t" [ "a"; "a"; "c" ];
        D.Fact.of_strings "t" [ "b"; "b"; "c" ];
        D.Fact.of_strings "t" [ "c"; "c"; "d" ];
      ]
  in
  let whole = D.Database.to_set db4 in
  Format.printf "@.Example 4 database: %a@." D.Fact.pp_set whole;
  Format.printf "whole database in why((d))?     %b@."
    (P.Explain.why_provenance ~variant:`Any q db4 a_d whole);
  Format.printf "whole database in why_UN((d))?  %b@."
    (P.Explain.why_provenance ~variant:`Unambiguous q db4 a_d whole);
  let explanation4 = P.Explain.explain q db4 a_d in
  Format.printf "@.%a@." P.Explain.pp_explanation explanation4
